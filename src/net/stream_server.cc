#include "net/stream_server.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <vector>

#include "core/tuple.h"

namespace gscope {
namespace {

bool IsAsciiLetter(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z');
}

// Pops the next space/tab-delimited token off `s` (empties `s` at the end).
std::string_view NextToken(std::string_view& s) {
  size_t begin = s.find_first_not_of(" \t");
  if (begin == std::string_view::npos) {
    s = {};
    return {};
  }
  size_t end = s.find_first_of(" \t", begin);
  std::string_view token = s.substr(begin, end == std::string_view::npos ? std::string_view::npos
                                                                         : end - begin);
  s = end == std::string_view::npos ? std::string_view{} : s.substr(end);
  return token;
}

}  // namespace

StreamServer::StreamServer(MainLoop* loop, Scope* scope, StreamServerOptions options)
    : loop_(loop),
      options_(options),
      router_({.auto_create_signals = options.auto_create_signals,
               .fanout_shards = options.fanout_shards,
               .worker_threads = options.fanout_workers}) {
  if (options_.control_poll_period_ms <= 0) {
    options_.control_poll_period_ms = 10;
  }
  if (scope != nullptr) {
    router_.AddScope(scope);
  }
}

bool StreamServer::AddScope(Scope* scope) { return router_.AddScope(scope); }

bool StreamServer::RemoveScope(Scope* scope) { return router_.RemoveScope(scope); }

StreamServer::~StreamServer() {
  self_alias_.reset();  // invalidate deferred closures before teardown
  Close();
}

bool StreamServer::Listen(uint16_t port) {
  Close();
  listener_ = Socket::Listen(port, &port_);
  if (!listener_.valid()) {
    return false;
  }
  accept_watch_ = loop_->AddIoWatch(listener_.fd(), IoCondition::kIn,
                                    [this](int, IoCondition) { return OnAcceptReady(); });
  if (accept_watch_ == 0) {
    return false;
  }
  // Maintenance sweep: idle-client reaping and/or echo-tap degradation.  The
  // period is half the shortest enabled window, so a deadline is observed at
  // most 1.5x late.
  int64_t window = 0;
  if (options_.idle_timeout_ms > 0) {
    window = options_.idle_timeout_ms;
  }
  if (options_.degrade_stalled_ms > 0 &&
      (window == 0 || options_.degrade_stalled_ms < window)) {
    window = options_.degrade_stalled_ms;
  }
  if (window > 0) {
    sweep_timer_ = loop_->AddTimeoutMs(std::max<int64_t>(1, window / 2),
                                       std::function<bool()>([this]() { return Sweep(); }));
  }
  return true;
}

void StreamServer::Close() {
  if (accept_watch_ != 0) {
    loop_->Remove(accept_watch_);
    accept_watch_ = 0;
  }
  if (sweep_timer_ != 0) {
    loop_->Remove(sweep_timer_);
    sweep_timer_ = 0;
  }
  listener_.Close();
  for (auto& [key, client] : clients_) {
    if (client->watch != 0) {
      loop_->Remove(client->watch);
    }
    if (client->session != nullptr) {
      // Unregister before the scope is destroyed with the client map.
      router_.RemoveScope(client->session->scope.get());
    }
  }
  clients_.clear();
  port_ = 0;
}

size_t StreamServer::control_session_count() const {
  size_t n = 0;
  for (const auto& [key, client] : clients_) {
    n += client->session != nullptr ? 1 : 0;
  }
  return n;
}

bool StreamServer::OnAcceptReady() {
  while (true) {
    Socket conn = listener_.Accept();
    if (!conn.valid()) {
      break;
    }
    if (clients_.size() >= options_.max_clients) {
      stats_.refused += 1;
      continue;  // RAII closes the connection
    }
    if (options_.client_rcvbuf_bytes > 0) {
      conn.SetRecvBufferBytes(options_.client_rcvbuf_bytes);
    }
    auto client = std::make_unique<Client>(options_.max_line_bytes);
    client->socket = std::move(conn);
    client->last_activity_ns = loop_->clock()->NowNs();
    int key = next_client_key_++;
    int fd = client->socket.fd();
    client->watch = loop_->AddIoWatch(
        fd, IoCondition::kIn, [this, key](int, IoCondition cond) { return OnClientReady(key, cond); });
    if (client->watch == 0) {
      continue;
    }
    clients_[key] = std::move(client);
    stats_.connections += 1;
  }
  return true;
}

bool StreamServer::OnClientReady(int client_key, IoCondition cond) {
  auto it = clients_.find(client_key);
  if (it == clients_.end()) {
    return false;
  }
  Client& client = *it->second;

  if (Has(cond, IoCondition::kErr)) {
    DropClient(client_key);
    return false;
  }

  char buf[65536];
  while (true) {
    IoResult r = client.socket.Read(buf, sizeof(buf));
    if (r.status == IoResult::Status::kOk) {
      stats_.bytes += static_cast<int64_t>(r.bytes);
      client.last_activity_ns = loop_->clock()->NowNs();
      ProcessData(client_key, client, buf, r.bytes);
      if (clients_.count(client_key) == 0) {
        return false;  // a control failure dropped the client mid-chunk
      }
      continue;
    }
    if (r.status == IoResult::Status::kWouldBlock) {
      return true;
    }
    // EOF or error: flush any final unterminated line, then drop.
    client.framer.FlushTail(
        [&](std::string_view line) { HandleLine(client_key, client, line); });
    FlushIngest();
    DropClient(client_key);
    return false;
  }
}

void StreamServer::ProcessData(int client_key, Client& client, const char* data, size_t len) {
  client.framer.Consume(data, len, &stats_.parse_errors,
                        [&](std::string_view line) { HandleLine(client_key, client, line); });
  FlushIngest();
}

void StreamServer::FlushIngest() {
  IngestRouter::FlushStats flushed = router_.Flush();
  stats_.dropped_late += flushed.dropped_late;
}

void StreamServer::HandleLine(int client_key, Client& client, std::string_view line) {
  // Tuple lines start with a timestamp; a leading letter means a control
  // verb (tuple names sit in the third field, so the two grammars cannot
  // collide — docs/protocol.md).
  if (options_.enable_control && !line.empty() && IsAsciiLetter(line.front())) {
    HandleControlLine(client_key, client, line);
    return;
  }
  if (ingest_tap_) {
    // Diagnostic-only second parse; the router parses authoritatively below.
    if (std::optional<TupleView> tuple = ParseTupleView(line); tuple.has_value()) {
      ingest_tap_(*tuple);
    }
  }
  router_.AppendTupleLine(line, &stats_.tuples, &stats_.parse_errors);
}

void StreamServer::HandleControlLine(int client_key, Client& client, std::string_view line) {
  if (!line.empty() && line.back() == '\r') {
    line.remove_suffix(1);  // CRLF framing
  }
  std::string_view rest = line;
  std::string_view verb = NextToken(rest);

  if (verb != "SUB" && verb != "UNSUB" && verb != "DELAY" && verb != "LIST" &&
      verb != "STATS" && verb != "PING" && verb != "TIME") {
    // Unknown verb: counted like any other malformed line so a garbage
    // producer cannot hide behind the control grammar; an existing session
    // additionally gets an ERR reply.
    stats_.parse_errors += 1;
    if (client.session != nullptr) {
      stats_.control_errors += 1;
      Reply(*client.session, "ERR unknown-verb");
    }
    return;
  }

  stats_.control_commands += 1;
  std::string_view arg = NextToken(rest);
  std::string_view excess = NextToken(rest);

  // Validate the argument shape BEFORE creating a session: a structurally
  // malformed command must not cost this connection a scope, a poll timer,
  // and a router slot.  (The ERR reply still requires an existing session's
  // writer; a malformed first command is only counted.)
  std::string reject;
  int64_t delay_ms = -1;
  if (!excess.empty() ||
      ((verb == "LIST" || verb == "STATS" || verb == "TIME") && !arg.empty())) {
    // PING is the one verb with an optional argument: an opaque token echoed
    // back verbatim (clients stamp it with their send time for RTT).
    reject.append("ERR ").append(verb).append(" trailing-junk");
  } else if ((verb == "SUB" || verb == "UNSUB") && arg.empty()) {
    reject.append("ERR ").append(verb).append(" missing-pattern");
  } else if (verb == "DELAY") {
    auto [p, ec] = std::from_chars(arg.data(), arg.data() + arg.size(), delay_ms);
    if (arg.empty() || ec != std::errc{} || p != arg.data() + arg.size() || delay_ms < 0) {
      reject = "ERR DELAY bad-milliseconds";
    }
  }
  if (!reject.empty()) {
    stats_.control_errors += 1;
    if (client.session != nullptr) {
      Reply(*client.session, reject);
    }
    return;
  }

  ControlSession& session = EnsureSession(client_key, client);
  std::string reply;
  if (verb == "SUB") {
    if (!session.filter.Add(arg)) {
      reply.append("ERR SUB duplicate-pattern ").append(arg);
    } else {
      reply.append("OK SUB ").append(arg);
    }
  } else if (verb == "UNSUB") {
    if (!session.filter.Remove(arg)) {
      reply.append("ERR UNSUB unknown-pattern ").append(arg);
    } else {
      reply.append("OK UNSUB ").append(arg);
    }
  } else if (verb == "DELAY") {
    session.scope->SetDelayMs(delay_ms);
    reply.append("OK DELAY ").append(arg);
  } else if (verb == "PING") {
    // Liveness probe.  Like every other verb it creates a session on first
    // use: the PONG needs the session's egress writer to travel back.
    stats_.pings_received += 1;
    reply.append("PONG");
    if (!arg.empty()) {
      reply.push_back(' ');
      reply.append(arg);
    }
  } else if (verb == "TIME") {
    // The server's scope time, on the shared display axis (AdoptTimeBase):
    // clients estimate clock offset from this plus the observed RTT, so a
    // cross-host late-drop delay is judged against honest timestamps.
    stats_.time_requests += 1;
    reply.append("OK TIME ").append(std::to_string(session.scope->NowMs()));
  } else if (verb == "STATS") {
    // One reply line of space-separated key/value pairs (docs/protocol.md):
    // ingest health plus the drain-coalescing counters summed over every
    // display target the router feeds (local scopes and remote sessions).
    int64_t coalesced = 0;
    int64_t retained = 0;
    for (const Scope* s : router_.scopes()) {
      coalesced += s->counters().samples_coalesced;
      retained += s->counters().samples_retained;
    }
    reply.append("OK STATS tuples ").append(std::to_string(stats_.tuples));
    reply.append(" parse_errors ").append(std::to_string(stats_.parse_errors));
    reply.append(" dropped_late ").append(std::to_string(stats_.dropped_late));
    reply.append(" echo_dropped ").append(std::to_string(stats_.echo_dropped));
    reply.append(" echo_evicted ").append(std::to_string(stats_.echo_evicted));
    reply.append(" excluded_route_slots ")
        .append(std::to_string(router_.excluded_route_slots()));
    reply.append(" samples_coalesced ").append(std::to_string(coalesced));
    reply.append(" samples_retained ").append(std::to_string(retained));
    // Robustness counters (appended: the key table is extend-only, clients
    // scan for keys they know and skip the rest).
    int64_t policy_switches = stats_.policy_switches;  // retired sessions
    for (const auto& [k, c] : clients_) {
      if (c->session != nullptr) {
        policy_switches += c->session->writer.stats().policy_switches;
      }
    }
    reply.append(" pings_received ").append(std::to_string(stats_.pings_received));
    reply.append(" taps_downgraded ").append(std::to_string(stats_.taps_downgraded));
    reply.append(" taps_restored ").append(std::to_string(stats_.taps_restored));
    reply.append(" clients_idle_dropped ")
        .append(std::to_string(stats_.clients_idle_dropped));
    reply.append(" policy_switches ").append(std::to_string(policy_switches));
  } else {  // LIST
    // The count goes FIRST: if the egress backlog drops some of the INFO
    // frames (whole-frame policy), the client can still tell the listing
    // was incomplete.
    reply.append("OK LIST ")
        .append(std::to_string(session.filter.pattern_count()))
        .append(" DELAY ")
        .append(std::to_string(session.scope->delay_ms()));
    Reply(session, reply);
    for (const std::string& pattern : session.filter.patterns()) {
      std::string info;
      info.append("INFO SUB ").append(pattern);
      Reply(session, info);
    }
    return;
  }

  if (reply.compare(0, 3, "ERR") == 0) {
    stats_.control_errors += 1;
  }
  Reply(session, reply);
}

StreamServer::ControlSession& StreamServer::EnsureSession(int client_key, Client& client) {
  if (client.session != nullptr) {
    return *client.session;
  }
  auto session = std::make_unique<ControlSession>(loop_, options_.control_max_buffer);
  if (options_.control_sndbuf_bytes > 0) {
    client.socket.SetSendBufferBytes(options_.control_sndbuf_bytes);
  }
  session->scope = std::make_unique<Scope>(
      loop_, ScopeOptions{.name = "control-" + std::to_string(client_key),
                          .width = options_.control_scope_width,
                          .height = options_.control_scope_height});
  Scope* scope = session->scope.get();
  scope->SetPollingMode(options_.control_poll_period_ms);
  // Judge producer timestamps on the server's existing display axis: a
  // session created mid-stream must not restart scope time at zero.
  if (!router_.scopes().empty()) {
    scope->AdoptTimeBase(*router_.scopes().front());
  }
  session->writer.SetPolicy(options_.control_overflow_policy,
                            MillisToNanos(options_.control_block_deadline_ms));
  // Egress: every sample routed to the session scope is re-serialized down
  // the connection; overload discards whole tuples only, victim per the
  // configured policy (drop-oldest evictions surface as echo_evicted).
  // Session scopes are pure display-only consumers EXCEPT for this tap: the
  // echo contract is per-sample, so the tap registers as kEverySample and
  // the route table keeps the session's slots on the history path.  A
  // session pinned at its egress cap for degrade_stalled_ms is downgraded
  // to TapMode::kCoalesced by Sweep() - the full last-wins fold for free -
  // and restored once the backlog drains calm.
  InstallEchoTap(*session, TapMode::kEverySample);
  // A dead egress fd means the connection is gone; drop the client from a
  // fresh stack frame (the writer that saw the error is inside the session
  // being destroyed).  The weak token keeps the deferred closure from
  // touching a server destroyed before the invoke queue drains.
  std::weak_ptr<StreamServer> weak_self = self_alias_;
  session->writer.SetErrorCallback([this, client_key, weak_self]() {
    loop_->Invoke([client_key, weak_self]() {
      if (std::shared_ptr<StreamServer> server = weak_self.lock()) {
        server->DropClient(client_key);
      }
    });
  });
  session->writer.Attach(client.socket.fd());
  scope->StartPolling();
  router_.AddScope(scope, &session->filter);
  stats_.sessions_opened += 1;
  client.session = std::move(session);
  return *client.session;
}

void StreamServer::Reply(ControlSession& session, std::string_view line) {
  int64_t evicted_before = session.writer.stats().frames_evicted;
  std::string& buf = session.writer.BeginFrame();
  buf.append(line);
  buf.push_back('\n');
  if (!session.writer.CommitFrame()) {
    stats_.echo_dropped += 1;
  }
  stats_.echo_evicted += session.writer.stats().frames_evicted - evicted_before;
}

void StreamServer::InstallEchoTap(ControlSession& session, TapMode mode) {
  FramedWriter* writer = &session.writer;
  session.tap_mode = mode;
  session.scope->SetBufferedTap(
      [this, writer](std::string_view name, int64_t time_ms, double value) {
        int64_t evicted_before = writer->stats().frames_evicted;
        AppendTuple(writer->BeginFrame(), time_ms, value, name);
        if (writer->CommitFrame()) {
          stats_.tuples_echoed += 1;
        } else {
          stats_.echo_dropped += 1;
        }
        stats_.echo_evicted += writer->stats().frames_evicted - evicted_before;
      },
      mode);
}

bool StreamServer::Sweep() {
  Nanos now = loop_->clock()->NowNs();

  if (options_.idle_timeout_ms > 0) {
    Nanos cutoff = MillisToNanos(options_.idle_timeout_ms);
    std::vector<int> idle;  // collect first: DropClient mutates clients_
    for (const auto& [key, client] : clients_) {
      if (now - client->last_activity_ns >= cutoff) {
        idle.push_back(key);
      }
    }
    for (int key : idle) {
      stats_.clients_idle_dropped += 1;
      DropClient(key);
    }
  }

  if (options_.degrade_stalled_ms > 0) {
    Nanos window = MillisToNanos(options_.degrade_stalled_ms);
    for (auto& [key, client] : clients_) {
      ControlSession* s = client->session.get();
      if (s == nullptr) {
        continue;
      }
      const FramedWriter::Stats& w = s->writer.stats();
      int64_t loss = w.frames_dropped + w.frames_evicted;
      // "Pinned" = the backlog is holding at least half its cap, or frames
      // were lost since the last sweep - either way the subscriber is not
      // keeping up with the per-sample echo.
      bool pinned = s->writer.pending_bytes() * 2 >= options_.control_max_buffer ||
                    loss != s->last_loss_frames;
      // "Calm" = backlog nearly drained AND no loss for a whole window.
      bool calm = s->writer.pending_bytes() * 8 <= options_.control_max_buffer &&
                  loss == s->last_loss_frames;
      s->last_loss_frames = loss;

      if (s->tap_mode == TapMode::kEverySample) {
        s->calm_since_ns = -1;
        if (!pinned) {
          s->stalled_since_ns = -1;
        } else if (s->stalled_since_ns < 0) {
          s->stalled_since_ns = now;
        } else if (now - s->stalled_since_ns >= window) {
          // Degrade instead of evicting: the subscriber keeps the freshest
          // value of every signal at display granularity.  The NOTICE rides
          // the same (pinned) writer, so delivery is best-effort - the
          // taps_downgraded counter is the authoritative record.
          InstallEchoTap(*s, TapMode::kCoalesced);
          stats_.taps_downgraded += 1;
          Reply(*s, "NOTICE DEGRADE coalesced");
          s->stalled_since_ns = -1;
        }
      } else {
        s->stalled_since_ns = -1;
        if (!calm) {
          s->calm_since_ns = -1;
        } else if (s->calm_since_ns < 0) {
          s->calm_since_ns = now;
        } else if (now - s->calm_since_ns >= window) {
          InstallEchoTap(*s, TapMode::kEverySample);
          stats_.taps_restored += 1;
          Reply(*s, "NOTICE RESTORE every-sample");
          s->calm_since_ns = -1;
        }
      }
    }
  }
  return true;
}

void StreamServer::DropClient(int client_key) {
  auto it = clients_.find(client_key);
  if (it == clients_.end()) {
    return;
  }
  if (it->second->watch != 0) {
    loop_->Remove(it->second->watch);
  }
  if (it->second->session != nullptr) {
    // Unregister the session scope (epoch bump: routes re-snapshot) before
    // its storage goes away with the client entry.
    router_.RemoveScope(it->second->session->scope.get());
    // The retired writer's adaptive transitions fold into the server total
    // so STATS stays monotone across disconnects.
    stats_.policy_switches += it->second->session->writer.stats().policy_switches;
  }
  clients_.erase(it);
  stats_.disconnections += 1;
}

}  // namespace gscope
