#include "net/stream_server.h"

#include <algorithm>
#include <cstring>

#include "core/tuple.h"

namespace gscope {

StreamServer::StreamServer(MainLoop* loop, Scope* scope, StreamServerOptions options)
    : loop_(loop), options_(options) {
  if (scope != nullptr) {
    scopes_.push_back(scope);
  }
}

bool StreamServer::AddScope(Scope* scope) {
  if (scope == nullptr ||
      std::find(scopes_.begin(), scopes_.end(), scope) != scopes_.end()) {
    return false;
  }
  scopes_.push_back(scope);
  scopes_epoch_ += 1;
  return true;
}

bool StreamServer::RemoveScope(Scope* scope) {
  auto it = std::find(scopes_.begin(), scopes_.end(), scope);
  if (it == scopes_.end()) {
    return false;
  }
  // RouteEpoch sums the scopes' signal epochs; compensate for the removed
  // term so the total stays strictly increasing (a repeated epoch value
  // would let a stale, wrongly-sized route entry survive).
  scopes_epoch_ += scope->signals_epoch() + 1;
  scopes_.erase(it);
  return true;
}

uint64_t StreamServer::RouteEpoch() const {
  uint64_t epoch = scopes_epoch_;
  for (const Scope* scope : scopes_) {
    epoch += scope->signals_epoch();
  }
  return epoch;
}

StreamServer::~StreamServer() { Close(); }

bool StreamServer::Listen(uint16_t port) {
  Close();
  listener_ = Socket::Listen(port, &port_);
  if (!listener_.valid()) {
    return false;
  }
  accept_watch_ = loop_->AddIoWatch(listener_.fd(), IoCondition::kIn,
                                    [this](int, IoCondition) { return OnAcceptReady(); });
  return accept_watch_ != 0;
}

void StreamServer::Close() {
  if (accept_watch_ != 0) {
    loop_->Remove(accept_watch_);
    accept_watch_ = 0;
  }
  listener_.Close();
  for (auto& [key, client] : clients_) {
    if (client->watch != 0) {
      loop_->Remove(client->watch);
    }
  }
  clients_.clear();
  port_ = 0;
}

bool StreamServer::OnAcceptReady() {
  while (true) {
    Socket conn = listener_.Accept();
    if (!conn.valid()) {
      break;
    }
    if (clients_.size() >= options_.max_clients) {
      stats_.refused += 1;
      continue;  // RAII closes the connection
    }
    auto client = std::make_unique<Client>();
    client->socket = std::move(conn);
    int key = next_client_key_++;
    int fd = client->socket.fd();
    client->watch = loop_->AddIoWatch(
        fd, IoCondition::kIn, [this, key](int, IoCondition cond) { return OnClientReady(key, cond); });
    if (client->watch == 0) {
      continue;
    }
    clients_[key] = std::move(client);
    stats_.connections += 1;
  }
  return true;
}

bool StreamServer::OnClientReady(int client_key, IoCondition cond) {
  auto it = clients_.find(client_key);
  if (it == clients_.end()) {
    return false;
  }
  Client& client = *it->second;

  if (Has(cond, IoCondition::kErr)) {
    DropClient(client_key);
    return false;
  }

  char buf[65536];
  while (true) {
    IoResult r = client.socket.Read(buf, sizeof(buf));
    if (r.status == IoResult::Status::kOk) {
      stats_.bytes += static_cast<int64_t>(r.bytes);
      ProcessData(client, buf, r.bytes);
      continue;
    }
    if (r.status == IoResult::Status::kWouldBlock) {
      return true;
    }
    // EOF or error: flush any final unterminated line, then drop.
    if (!client.discarding && !client.line_buffer.empty()) {
      ingest_scratch_.resize(scopes_.size());
      HandleLine(client, client.line_buffer);
      client.line_buffer.clear();
      FlushIngest();
    }
    DropClient(client_key);
    return false;
  }
}

void StreamServer::ProcessData(Client& client, const char* data, size_t len) {
  ingest_scratch_.resize(scopes_.size());
  size_t pos = 0;
  while (pos < len) {
    const char* nl =
        static_cast<const char*>(std::memchr(data + pos, '\n', len - pos));
    if (nl == nullptr) {
      // No newline in the remainder: keep the tail for the next read.
      size_t tail = len - pos;
      if (client.discarding) {
        break;
      }
      if (client.line_buffer.size() + tail > options_.max_line_bytes) {
        stats_.parse_errors += 1;
        client.line_buffer.clear();
        client.discarding = true;  // resynchronize at the next newline
        break;
      }
      client.line_buffer.append(data + pos, tail);
      break;
    }
    size_t line_end = static_cast<size_t>(nl - data);
    if (client.discarding) {
      client.discarding = false;  // the over-long line ends here
    } else if (!client.line_buffer.empty()) {
      // Split line: complete it in the side buffer (the only copied case).
      if (client.line_buffer.size() + (line_end - pos) > options_.max_line_bytes) {
        stats_.parse_errors += 1;
      } else {
        client.line_buffer.append(data + pos, line_end - pos);
        HandleLine(client, client.line_buffer);
      }
      client.line_buffer.clear();
    } else if (line_end - pos > options_.max_line_bytes) {
      stats_.parse_errors += 1;
    } else {
      // Whole line inside the read buffer: parse in place.
      HandleLine(client, std::string_view(data + pos, line_end - pos));
    }
    pos = line_end + 1;
  }
  FlushIngest();
}

void StreamServer::FlushIngest() {
  for (size_t i = 0; i < scopes_.size() && i < ingest_scratch_.size(); ++i) {
    std::vector<Sample>& batch = ingest_scratch_[i];
    if (batch.empty()) {
      continue;
    }
    size_t accepted = scopes_[i]->PushBufferedBatch(batch.data(), batch.size());
    stats_.dropped_late += static_cast<int64_t>(batch.size() - accepted);
    batch.clear();
  }
}

void StreamServer::HandleLine(Client& client, std::string_view line) {
  std::optional<TupleView> tuple = ParseTupleView(line);
  if (!tuple.has_value()) {
    if (!IsIgnorableLine(line)) {
      stats_.parse_errors += 1;
    }
    return;
  }
  stats_.tuples += 1;

  if (tuple->name.empty()) {
    // Two-field single-signal form: each scope routes it to its first
    // BUFFER signal at drain time.
    for (std::vector<Sample>& batch : ingest_scratch_) {
      batch.push_back(Sample{tuple->time_ms, tuple->value, kUnnamedSampleKey, 0});
    }
    return;
  }

  uint64_t epoch = RouteEpoch();
  if (client.routes_epoch != epoch) {
    client.routes.clear();
    client.last_route = nullptr;
    client.routes_epoch = epoch;
  }
  const std::vector<SignalId>* ids_ptr = nullptr;
  std::vector<SignalId> uncached_ids;
  if (client.last_route != nullptr && client.last_name == tuple->name) {
    ids_ptr = client.last_route;
  } else {
    auto route = client.routes.find(tuple->name);
    if (route == client.routes.end()) {
      // First time this client sends the name (or the cache was
      // invalidated): resolve once per scope through the interned index.
      std::vector<SignalId> ids;
      ids.reserve(scopes_.size());
      bool any_resolved = false;
      for (Scope* scope : scopes_) {
        SignalId id = options_.auto_create_signals ? scope->FindOrAddBufferSignal(tuple->name)
                                                   : scope->FindSignal(tuple->name);
        any_resolved = any_resolved || id != 0;
        ids.push_back(id);
      }
      if (!any_resolved) {
        // Nothing resolved (auto-create off, unknown everywhere): don't
        // cache — a stream of endless distinct unknown names must not grow
        // the cache without bound.  The per-line cost is one O(1) index
        // miss per scope.
        uncached_ids = std::move(ids);
        ids_ptr = &uncached_ids;
        client.last_route = nullptr;
      } else {
        // Auto-creation bumps the epoch; re-sync so this entry survives.
        client.routes_epoch = RouteEpoch();
        route = client.routes.emplace(std::string(tuple->name), std::move(ids)).first;
      }
    }
    if (ids_ptr == nullptr) {
      client.last_name.assign(tuple->name);
      client.last_route = &route->second;
      ids_ptr = client.last_route;
    }
  }
  const std::vector<SignalId>& ids = *ids_ptr;
  for (size_t i = 0; i < scopes_.size(); ++i) {
    if (ids[i] == 0) {
      // Unknown name with auto-create off: go through the name shim so the
      // scope can still resolve at drain time if the app adds the signal
      // within the delay window (cold path; the cache re-resolves once the
      // scope's signal epoch changes).
      if (!scopes_[i]->PushBuffered(tuple->name, tuple->time_ms, tuple->value)) {
        stats_.dropped_late += 1;
      }
      continue;
    }
    ingest_scratch_[i].push_back(
        Sample{tuple->time_ms, tuple->value, static_cast<SampleKey>(ids[i]), 0});
  }
}

void StreamServer::DropClient(int client_key) {
  auto it = clients_.find(client_key);
  if (it == clients_.end()) {
    return;
  }
  if (it->second->watch != 0) {
    loop_->Remove(it->second->watch);
  }
  clients_.erase(it);
  stats_.disconnections += 1;
}

}  // namespace gscope
