#include "net/stream_server.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <mutex>
#include <vector>

#include "core/tuple.h"
#include "freq/spectrum.h"

namespace gscope {
namespace {

bool IsAsciiLetter(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z');
}

// Pops the next space/tab-delimited token off `s` (empties `s` at the end).
std::string_view NextToken(std::string_view& s) {
  size_t begin = s.find_first_not_of(" \t");
  if (begin == std::string_view::npos) {
    s = {};
    return {};
  }
  size_t end = s.find_first_of(" \t", begin);
  std::string_view token = s.substr(begin, end == std::string_view::npos ? std::string_view::npos
                                                                         : end - begin);
  s = end == std::string_view::npos ? std::string_view{} : s.substr(end);
  return token;
}

// Echo samples staged per binary session before sealing a wire frame.  Kept
// well under a poll period's worth for typical rates so subscriber latency
// stays bounded by the deferred flush (one loop iteration) either way.
constexpr size_t kEgressFrameSamples = 128;

// Pacing granularity of a speed > 0 REPLAY (docs/protocol.md "Flight
// recorder"): recorded time is re-evaluated against the loop clock this
// often, so emission bursts are at most one tick's worth.
constexpr int64_t kReplayTickMs = 5;

// Tenants see their own bare names: the stored "<ns>\x1f" identity prefix is
// stripped before a sample is re-serialized down the session.  The prefix is
// matched, not assumed: right after an AUTH re-scope, samples routed under
// the previous identity may still drain from the session scope.
std::string_view StripTenantPrefix(const std::string& ns, std::string_view name) {
  if (!ns.empty() && name.size() > ns.size() + 1 &&
      name.compare(0, ns.size(), ns) == 0 && name[ns.size()] == kNamespaceSep) {
    name.remove_prefix(ns.size() + 1);
  }
  return name;
}

}  // namespace

// Decoder callbacks for one client's inbound binary stream.  A plain struct
// of pointers: the decoder template inlines through it, and nested types see
// StreamServer's private members.
struct StreamServer::FrameHandler {
  StreamServer* server;
  LoopShard* shard;
  int client_key;
  Client* client;
  void OnDictEntry(uint32_t id, std::string_view name) {
    server->BindDict(*client, id, name);
  }
  void OnSampleBatch(int64_t base_time_ms, const char* records, size_t n) {
    server->IngestRecords(*client, base_time_ms, records, n);
  }
  void OnTextLine(std::string_view line) {
    server->HandleLine(*shard, client_key, *client, line);
  }
};

StreamServer::StreamServer(MainLoop* loop, Scope* scope, StreamServerOptions options)
    : loop_(loop),
      options_(options),
      router_({.auto_create_signals = options.auto_create_signals,
               .fanout_shards = options.fanout_shards,
               .worker_threads = options.fanout_workers}),
      pool_(loop, options.loops) {
  if (options_.control_poll_period_ms <= 0) {
    options_.control_poll_period_ms = 10;
  }
  options_.loops = pool_.size();  // clamped to >= 1
  // Route tables are built from (and ingest arrives on) any loop once the
  // server shards; at loops = 1 this leaves the router lock-free.
  router_.SetConcurrent(pool_.size() > 1);
  shards_.reserve(pool_.size());
  for (size_t i = 0; i < pool_.size(); ++i) {
    auto shard = std::make_unique<LoopShard>();
    shard->loop = pool_.loop(i);
    shard->index = i;
    shards_.push_back(std::move(shard));
  }
  if (scope != nullptr) {
    router_.AddScope(scope);
  }
}

bool StreamServer::AddScope(Scope* scope) { return router_.AddScope(scope); }

bool StreamServer::RemoveScope(Scope* scope) { return router_.RemoveScope(scope); }

StreamServer::~StreamServer() {
  {
    // Invalidate deferred closures before teardown.  Loop threads may still
    // be copying the token (WeakSelf) until Close() joins them.
    std::lock_guard<std::mutex> lock(self_alias_mu_);
    self_alias_.reset();
  }
  Close();
}

std::weak_ptr<StreamServer> StreamServer::WeakSelf() {
  std::lock_guard<std::mutex> lock(self_alias_mu_);
  return self_alias_;
}

bool StreamServer::Listen(uint16_t port) {
  Close();
  const size_t loops = pool_.size();
  pool_.Start();
  reuse_port_active_ = false;
  if (loops > 1 && options_.reuse_port && Socket::ReusePortSupported()) {
    // Listener per loop: the kernel spreads connections, no hand-off hop.
    Socket first = Socket::Listen(port, &port_, /*reuse_port=*/true);
    bool bound = first.valid();
    if (bound) {
      shards_[0]->listener = std::move(first);
      for (size_t i = 1; i < loops && bound; ++i) {
        shards_[i]->listener = Socket::Listen(port_, nullptr, /*reuse_port=*/true);
        bound = shards_[i]->listener.valid();
      }
    }
    if (bound) {
      reuse_port_active_ = true;
    } else {
      // A platform can pass the capability probe yet refuse the concrete
      // bind: fall back to the single-acceptor hand-off, don't fail Listen.
      for (auto& shard : shards_) {
        shard->listener.Close();
      }
      port_ = 0;
    }
  }
  if (!reuse_port_active_) {
    shards_[0]->listener = Socket::Listen(port, &port_);
    if (!shards_[0]->listener.valid()) {
      pool_.Stop();
      return false;
    }
  }

  // Maintenance sweep: idle-client reaping and/or echo-tap degradation.  The
  // period is half the shortest enabled window, so a deadline is observed at
  // most 1.5x late.  One sweep per shard: each loop reaps its own clients.
  int64_t window = 0;
  if (options_.idle_timeout_ms > 0) {
    window = options_.idle_timeout_ms;
  }
  if (options_.degrade_stalled_ms > 0 &&
      (window == 0 || options_.degrade_stalled_ms < window)) {
    window = options_.degrade_stalled_ms;
  }

  bool ok = true;
  for (size_t i = 0; i < loops; ++i) {
    LoopShard* shard = shards_[i].get();
    pool_.InvokeSync(i, [this, shard, window, &ok]() {
      if (shard->listener.valid()) {
        shard->accept_watch = shard->loop->AddIoWatch(
            shard->listener.fd(), IoCondition::kIn,
            [this, shard](int, IoCondition) { return OnAcceptReady(*shard); });
        if (shard->accept_watch == 0) {
          ok = false;
        }
      }
      if (window > 0) {
        shard->sweep_timer = shard->loop->AddTimeoutMs(
            std::max<int64_t>(1, window / 2),
            std::function<bool()>([this, shard]() { return Sweep(*shard); }));
      }
    });
  }
  if (!ok) {
    Close();
    return false;
  }
  return true;
}

void StreamServer::Close() {
  // Graceful drain, shard by shard: each loop removes its own watches and
  // timers and destroys its own clients (session scopes unregister from the
  // router first, under the router lock, so no in-flight flush from another
  // shard can touch a dying scope).
  for (size_t i = 0; i < pool_.size(); ++i) {
    LoopShard* shard = shards_[i].get();
    pool_.InvokeSync(i, [this, shard]() {
      if (shard->accept_watch != 0) {
        shard->loop->Remove(shard->accept_watch);
        shard->accept_watch = 0;
      }
      if (shard->sweep_timer != 0) {
        shard->loop->Remove(shard->sweep_timer);
        shard->sweep_timer = 0;
      }
      shard->listener.Close();
      for (auto& [key, client] : shard->clients) {
        if (client->watch != 0) {
          shard->loop->Remove(client->watch);
        }
        CancelReplay(*shard, *client);
        if (client->session != nullptr) {
          // Unregister before the scope is destroyed with the client map.
          router_.RemoveScope(client->session->scope.get());
        }
      }
      for (auto& [key, group] : shard->stage_groups) {
        // Stage-group scopes unregister like session scopes, before their
        // storage goes away with the map.
        router_.RemoveScope(group->scope.get());
        stats_.stages_active -= 1;
      }
      shard->stage_groups.clear();
      shard->clients.clear();
      shard->client_count.store(0, std::memory_order_relaxed);
      shard->session_count.store(0, std::memory_order_relaxed);
    });
  }
  {
    // A recording never outlives its server: seal and stop the capture
    // (the recorder's own thread joins here) before the loops wind down.
    std::lock_guard<std::mutex> lock(record_mu_);
    if (recorder_ != nullptr) {
      router_.RemoveScope(recorder_->scope());
      recorder_->Stop();
      FoldRecorderLocked();
      recorder_.reset();
    }
  }
  pool_.Stop();
  port_ = 0;
}

size_t StreamServer::client_count() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->client_count.load(std::memory_order_relaxed);
  }
  return n;
}

size_t StreamServer::shard_client_count(size_t i) const {
  return i < shards_.size() ? shards_[i]->client_count.load(std::memory_order_relaxed) : 0;
}

size_t StreamServer::control_session_count() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->session_count.load(std::memory_order_relaxed);
  }
  return n;
}

StreamServer::LoopShard* StreamServer::PickShard() {
  LoopShard* best = shards_[0].get();
  size_t best_n = best->client_count.load(std::memory_order_relaxed);
  for (size_t i = 1; i < shards_.size(); ++i) {
    size_t n = shards_[i]->client_count.load(std::memory_order_relaxed);
    if (n < best_n) {
      best = shards_[i].get();
      best_n = n;
    }
  }
  return best;
}

bool StreamServer::OnAcceptReady(LoopShard& shard) {
  while (true) {
    Socket conn = shard.listener.Accept();
    if (!conn.valid()) {
      break;
    }
    if (client_count() >= options_.max_clients) {
      stats_.refused += 1;
      continue;  // RAII closes the connection
    }
    if (reuse_port_active_ || pool_.size() == 1) {
      // This shard's own listener accepted: the connection already lives on
      // the right loop.
      SetupClient(shard, std::move(conn), /*counted=*/false);
      continue;
    }
    // Hand-off mode: this is the single acceptor on loop 0.  Land the
    // connection on the least-loaded loop; the count is charged at dispatch
    // so an accept burst balances against in-flight hand-offs.
    LoopShard* target = PickShard();
    if (target == &shard) {
      SetupClient(shard, std::move(conn), /*counted=*/false);
      continue;
    }
    target->client_count.fetch_add(1, std::memory_order_relaxed);
    std::weak_ptr<StreamServer> weak_self = WeakSelf();
    auto handoff = std::make_shared<Socket>(std::move(conn));
    target->loop->Invoke([weak_self, target, handoff]() {
      std::shared_ptr<StreamServer> server = weak_self.lock();
      if (server == nullptr) {
        return;  // server gone, and the shard storage with it
      }
      server->SetupClient(*target, std::move(*handoff), /*counted=*/true);
    });
  }
  return true;
}

void StreamServer::SetupClient(LoopShard& shard, Socket conn, bool counted) {
  if (options_.client_rcvbuf_bytes > 0) {
    conn.SetRecvBufferBytes(options_.client_rcvbuf_bytes);
  }
  auto client =
      std::make_unique<Client>(shard.loop, options_.max_line_bytes, options_.control_max_buffer);
  client->shard = &shard;
  client->loop = shard.loop;
  client->socket = std::move(conn);
  client->last_activity_ns = shard.loop->clock()->NowNs();
  int key = next_client_key_.fetch_add(1, std::memory_order_relaxed);
  client->key = key;
  int fd = client->socket.fd();
  LoopShard* sp = &shard;
  client->watch = shard.loop->AddIoWatch(
      fd, IoCondition::kIn,
      [this, sp, key](int, IoCondition cond) { return OnClientReady(*sp, key, cond); });
  if (client->watch == 0) {
    if (counted) {
      shard.client_count.fetch_sub(1, std::memory_order_relaxed);
    }
    return;
  }
  // Egress is armed on every connection (the HELLO reply must travel before
  // any session exists).  Overload discards whole frames only, victim per
  // the configured policy; a dead egress fd drops the client from a fresh
  // stack frame on its own loop, gated by the weak token against a
  // destroyed server.
  client->writer.SetPolicy(options_.control_overflow_policy,
                           MillisToNanos(options_.control_block_deadline_ms));
  std::weak_ptr<StreamServer> weak_self = WeakSelf();
  client->writer.SetErrorCallback([sp, key, weak_self]() {
    sp->loop->Invoke([sp, key, weak_self]() {
      if (std::shared_ptr<StreamServer> server = weak_self.lock()) {
        server->DropClient(*sp, key);
      }
    });
  });
  client->writer.Attach(fd);
  shard.clients[key] = std::move(client);
  if (!counted) {
    shard.client_count.fetch_add(1, std::memory_order_relaxed);
  }
  stats_.connections += 1;
}

bool StreamServer::OnClientReady(LoopShard& shard, int client_key, IoCondition cond) {
  auto it = shard.clients.find(client_key);
  if (it == shard.clients.end()) {
    return false;
  }
  Client& client = *it->second;

  if (Has(cond, IoCondition::kErr)) {
    DropClient(shard, client_key);
    return false;
  }

  char buf[65536];
  while (true) {
    IoResult r = client.socket.Read(buf, sizeof(buf));
    if (r.status == IoResult::Status::kOk) {
      stats_.bytes += static_cast<int64_t>(r.bytes);
      client.last_activity_ns = shard.loop->clock()->NowNs();
      ProcessData(shard, client_key, client, buf, r.bytes);
      if (shard.clients.count(client_key) == 0) {
        return false;  // a control failure dropped the client mid-chunk
      }
      continue;
    }
    if (r.status == IoResult::Status::kWouldBlock) {
      return true;
    }
    // EOF or error: flush any final unterminated line (text), or account a
    // torn partially-buffered frame (binary: the mid-frame-kill signal the
    // reliability contract counts), then drop.
    if (client.wire == WireMode::kBinary) {
      if (client.decoder != nullptr) {
        client.decoder->Finish();
        FoldDecoderStats(*client.decoder);
      }
    } else {
      client.framer.FlushTail(
          [&](std::string_view line) { HandleLine(shard, client_key, client, line); });
    }
    FlushIngest();
    DropClient(shard, client_key);
    return false;
  }
}

void StreamServer::ProcessData(LoopShard& shard, int client_key, Client& client,
                               const char* data, size_t len) {
  const char* p = data;
  size_t n = len;
  while (n > 0) {
    switch (client.wire) {
      case WireMode::kText: {
        // Stoppable: a HELLO line mid-chunk flips the mode and the remainder
        // of the chunk must be handled under the new one.
        int64_t overlong = 0;
        size_t used = client.framer.ConsumeStoppable(
            p, n, &overlong, [&](std::string_view line) {
              HandleLine(shard, client_key, client, line);
              return client.wire == WireMode::kText;
            });
        stats_.parse_errors += overlong;
        p += used;
        n -= used;
        break;
      }
      case WireMode::kBinaryPending: {
        // Text lines still parse; the first frame magic AT A LINE BOUNDARY
        // (chunk start with no line in progress, or right after a newline)
        // flips the connection to framed-binary for good.
        size_t flip = n;
        if (!client.framer.mid_line() &&
            static_cast<uint8_t>(p[0]) == wire::kMagic0) {
          flip = 0;
        } else {
          for (const char* q = p;;) {
            const char* nl = static_cast<const char*>(
                std::memchr(q, '\n', static_cast<size_t>(p + n - q)));
            if (nl == nullptr || nl + 1 >= p + n) {
              break;
            }
            q = nl + 1;
            if (static_cast<uint8_t>(*q) == wire::kMagic0) {
              flip = static_cast<size_t>(q - p);
              break;
            }
          }
        }
        if (flip > 0) {
          int64_t overlong = 0;
          client.framer.Consume(p, flip, &overlong,
                                [&](std::string_view line) {
                                  HandleLine(shard, client_key, client, line);
                                });
          stats_.parse_errors += overlong;
        }
        if (flip < n) {
          client.wire = WireMode::kBinary;
        }
        p += flip;
        n -= flip;
        break;
      }
      case WireMode::kBinary: {
        FrameHandler handler{this, &shard, client_key, &client};
        client.decoder->Consume(p, n, handler);
        FoldDecoderStats(*client.decoder);
        n = 0;
        break;
      }
    }
  }
  FlushIngest();
}

void StreamServer::FoldDecoderStats(wire::FrameDecoder& decoder) {
  wire::FrameDecoder::Stats s = decoder.Take();
  stats_.frames_rx += s.frames_rx;
  stats_.frames_crc_errors += s.crc_errors;
}

void StreamServer::FlushIngest() {
  IngestRouter::FlushStats flushed = router_.Flush();
  stats_.dropped_late += flushed.dropped_late;
}

void StreamServer::HandleLine(LoopShard& shard, int client_key, Client& client,
                              std::string_view line) {
  // Tuple lines start with a timestamp; a leading letter means a control
  // verb (tuple names sit in the third field, so the two grammars cannot
  // collide — docs/protocol.md).
  if (options_.enable_control && !line.empty() && IsAsciiLetter(line.front())) {
    HandleControlLine(shard, client_key, client, line);
    return;
  }
  if (ingest_tap_) {
    // Diagnostic-only second parse; the router parses authoritatively below.
    if (std::optional<TupleView> tuple = ParseTupleView(line); tuple.has_value()) {
      ingest_tap_(*tuple);
    }
  }
  int64_t tuples = 0;
  int64_t parse_errors = 0;
  router_.AppendTupleLine(line, client.ns, &tuples, &parse_errors);
  stats_.tuples += tuples;
  stats_.parse_errors += parse_errors;
}

void StreamServer::HandleControlLine(LoopShard& shard, int client_key, Client& client,
                                     std::string_view line) {
  if (!line.empty() && line.back() == '\r') {
    line.remove_suffix(1);  // CRLF framing
  }
  std::string_view rest = line;
  std::string_view verb = NextToken(rest);

  if (verb == "HELLO") {
    // Wire-format negotiation (docs/protocol.md "Binary wire protocol").
    // Handled before the whitelist's argument-shape validation and WITHOUT
    // creating a session: a producer upgrading its upload format must not
    // cost a scope, a poll timer, and a router slot.
    HandleHello(client, rest);
    return;
  }
  if (verb == "AUTH") {
    // Tenant entry: like HELLO, before the whitelist and session-free
    // (authenticating a producer must not cost a scope).
    HandleAuth(client, rest);
    return;
  }

  const bool stage_verb = verb == "DECIMATE" || verb == "EWMA" ||
                          verb == "ENVELOPE" || verb == "SPECTRUM";
  if (verb != "SUB" && verb != "UNSUB" && verb != "DELAY" && verb != "LIST" &&
      verb != "STATS" && verb != "PING" && verb != "TIME" &&
      verb != "COALESCE" && verb != "RAW" && verb != "RECORD" &&
      verb != "REPLAY" && !stage_verb) {
    // Unknown verb: counted like any other malformed line so a garbage
    // producer cannot hide behind the control grammar; an existing session
    // additionally gets an ERR reply.
    stats_.parse_errors += 1;
    if (client.session != nullptr) {
      stats_.control_errors += 1;
      Reply(client, "ERR unknown-verb");
    }
    return;
  }

  stats_.control_commands += 1;
  std::string_view arg = NextToken(rest);
  std::string_view excess = NextToken(rest);
  std::string_view extra = NextToken(rest);
  std::string_view extra2 = NextToken(rest);

  // Validate the argument shape BEFORE creating a session: a structurally
  // malformed command must not cost this connection a scope, a poll timer,
  // and a router slot.  (The ERR reply still requires an existing session's
  // writer; a malformed first command is only counted.)
  std::string reject;
  int64_t delay_ms = -1;
  int64_t replay_t0 = 0;
  int64_t replay_t1 = 0;
  double replay_speed = 0.0;
  StageSpec stage;
  if ((verb == "REPLAY"     ? !extra2.empty()
       : verb == "SPECTRUM" ? !extra.empty()
                            : !excess.empty()) ||
      ((verb == "STATS" || verb == "TIME" || verb == "COALESCE" ||
        verb == "RAW") &&
       !arg.empty()) ||
      (verb == "LIST" && !arg.empty() && arg != "STAGES")) {
    // PING is the one verb with an optional argument: an opaque token echoed
    // back verbatim (clients stamp it with their send time for RTT).
    // SPECTRUM has two (block size and optional window), REPLAY three
    // (window bounds and optional speed), LIST one optional literal
    // ("STAGES": the stage catalog).
    reject.append("ERR ").append(verb).append(" trailing-junk");
  } else if ((verb == "SUB" || verb == "UNSUB") && arg.empty()) {
    reject.append("ERR ").append(verb).append(" missing-pattern");
  } else if (verb == "RECORD" && arg.empty()) {
    reject = "ERR RECORD missing-path";
  } else if (verb == "REPLAY") {
    // REPLAY <t0-ms> <t1-ms> [speed]; speed 0 (the default) = burst.
    auto parse_i64 = [](std::string_view s, int64_t& out) {
      auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
      return !s.empty() && ec == std::errc{} && p == s.data() + s.size();
    };
    if (!parse_i64(arg, replay_t0) || !parse_i64(excess, replay_t1) ||
        replay_t1 < replay_t0) {
      reject = "ERR REPLAY bad-window";
    } else if (!extra.empty()) {
      auto [p, ec] =
          std::from_chars(extra.data(), extra.data() + extra.size(), replay_speed);
      if (ec != std::errc{} || p != extra.data() + extra.size() ||
          replay_speed < 0.0) {
        reject = "ERR REPLAY bad-speed";
      }
    }
  } else if (verb == "DELAY") {
    auto [p, ec] = std::from_chars(arg.data(), arg.data() + arg.size(), delay_ms);
    if (arg.empty() || ec != std::errc{} || p != arg.data() + arg.size() || delay_ms < 0) {
      reject = "ERR DELAY bad-milliseconds";
    }
  } else if (stage_verb) {
    // On failure `reject` carries the verb-specific ERR shape.
    ParseStageSpec(verb, arg, excess, stage, reject);
  }
  if (!reject.empty()) {
    stats_.control_errors += 1;
    if (client.session != nullptr) {
      Reply(client, reject);
    }
    return;
  }

  ControlSession& session = EnsureSession(shard, client_key, client);

  // Subscription-churn quota: a tenant flapping SUB/UNSUB forces a route
  // table rebuild per verb; over the window the verb is refused before it
  // touches the filter.  Deterministic under a SimClock.
  if ((verb == "SUB" || verb == "UNSUB") && !ChurnAllowed(client)) {
    stats_.control_errors += 1;
    stats_.quota_drops += 1;
    std::string err;
    err.append("ERR ").append(verb).append(" quota-churn");
    Reply(client, err);
    return;
  }

  std::string reply;
  if (verb == "SUB") {
    if (options_.quota_max_patterns > 0 &&
        session.filter.pattern_count() >= options_.quota_max_patterns) {
      stats_.quota_drops += 1;
      reply.append("ERR SUB quota-patterns ").append(arg);
    } else {
      bool added;
      {
        // Filter mutation under the route lock: a rebuild on another loop
        // reads the pattern list (no-op lock at loops = 1).
        std::unique_lock<std::mutex> routes = router_.LockRoutes();
        added = session.filter.Add(arg);
      }
      if (!added) {
        reply.append("ERR SUB duplicate-pattern ").append(arg);
      } else {
        reply.append("OK SUB ").append(arg);
        // A staged session re-keys: the pattern set is part of the group
        // identity (outside the lock - re-keying registers scopes).
        ReattachStage(shard, client);
      }
    }
  } else if (verb == "UNSUB") {
    bool removed;
    {
      std::unique_lock<std::mutex> routes = router_.LockRoutes();
      removed = session.filter.Remove(arg);
    }
    if (!removed) {
      reply.append("ERR UNSUB unknown-pattern ").append(arg);
    } else {
      reply.append("OK UNSUB ").append(arg);
      ReattachStage(shard, client);
    }
  } else if (verb == "DELAY") {
    session.scope->SetDelayMs(delay_ms);
    ReattachStage(shard, client);  // the delay is part of the group identity
    reply.append("OK DELAY ").append(arg);
  } else if (verb == "COALESCE" || verb == "RAW") {
    // COALESCE flips the session's own echo tap to the last-wins fold (one
    // winner per signal per tick); RAW restores the per-sample contract.
    // Either verb first detaches an attached stage.
    TapMode mode = verb == "COALESCE" ? TapMode::kCoalesced : TapMode::kEverySample;
    if (session.group != nullptr) {
      DetachStage(shard, client, mode);
    } else {
      // Tap swap under the route lock: rebuilds read the tap's history need.
      std::unique_lock<std::mutex> routes = router_.LockRoutes();
      InstallEchoTap(shard, client_key, client, mode);
    }
    reply.append("OK ").append(verb);
  } else if (stage_verb) {
    AttachStage(shard, client, stage);
    reply.append("OK ").append(stage.text);
  } else if (verb == "RECORD") {
    if (!client.ns.empty()) {
      // Recording captures EVERY tenant's signals: it is a server-operator
      // action, refused from inside a tenant namespace.
      reply.append("ERR RECORD not-authorized");
    } else {
      HandleRecord(arg, reply);
    }
  } else if (verb == "REPLAY") {
    // Open to tenants: the session filter gates the replayed window exactly
    // like live routing, so time travel cannot cross namespaces.  Sends its
    // own replies: OK + the (possibly paced) window + the DONE marker, or
    // an ERR.
    HandleReplay(shard, client_key, client, replay_t0, replay_t1, replay_speed);
    return;
  } else if (verb == "PING") {
    // Liveness probe.  Like every other verb it creates a session on first
    // use: the PONG needs the session's egress writer to travel back.
    stats_.pings_received += 1;
    reply.append("PONG");
    if (!arg.empty()) {
      reply.push_back(' ');
      reply.append(arg);
    }
  } else if (verb == "TIME") {
    // The server's scope time, on the shared display axis (AdoptTimeBase):
    // clients estimate clock offset from this plus the observed RTT, so a
    // cross-host late-drop delay is judged against honest timestamps.
    stats_.time_requests += 1;
    reply.append("OK TIME ").append(std::to_string(session.scope->NowMs()));
  } else if (verb == "STATS") {
    // One reply line of space-separated key/value pairs (docs/protocol.md):
    // ingest health plus the drain-coalescing counters summed over EVERY
    // display target on every loop.  The fold reads each scope's per-tick
    // coalesce mirror (relaxed atomics published at the end of its poll
    // tick) precisely so it can visit scopes owned by other loops: sharded
    // STATS answers are global, whichever loop answers (PR 8 shipped them
    // loop-local - the documented bug this fixes), at most one tick stale
    // per scope and with zero atomics on the per-sample drain path.
    int64_t coalesced = 0;
    int64_t retained = 0;
    router_.ForEachScope([&](Scope* s) {
      coalesced += s->coalesce_mirror().samples_coalesced;
      retained += s->coalesce_mirror().samples_retained;
    });
    reply.append("OK STATS tuples ").append(std::to_string(stats_.tuples.load()));
    reply.append(" parse_errors ").append(std::to_string(stats_.parse_errors.load()));
    reply.append(" dropped_late ").append(std::to_string(stats_.dropped_late.load()));
    reply.append(" echo_dropped ").append(std::to_string(stats_.echo_dropped.load()));
    reply.append(" echo_evicted ").append(std::to_string(stats_.echo_evicted.load()));
    reply.append(" excluded_route_slots ")
        .append(std::to_string(router_.excluded_route_slots()));
    reply.append(" samples_coalesced ").append(std::to_string(coalesced));
    reply.append(" samples_retained ").append(std::to_string(retained));
    // Robustness counters (appended: the key table is extend-only, clients
    // scan for keys they know and skip the rest).  Live writer transitions
    // fold from this shard's clients only; retired ones are global.
    int64_t policy_switches = stats_.policy_switches.load();
    for (const auto& [k, c] : shard.clients) {
      policy_switches += c->writer.stats().policy_switches;
    }
    reply.append(" pings_received ").append(std::to_string(stats_.pings_received.load()));
    reply.append(" taps_downgraded ").append(std::to_string(stats_.taps_downgraded.load()));
    reply.append(" taps_restored ").append(std::to_string(stats_.taps_restored.load()));
    reply.append(" clients_idle_dropped ")
        .append(std::to_string(stats_.clients_idle_dropped.load()));
    reply.append(" policy_switches ").append(std::to_string(policy_switches));
    // Binary wire protocol (appended; wire_format is the REQUESTING
    // connection's inbound mode: 0 = text, 1 = negotiated binary).
    reply.append(" frames_rx ").append(std::to_string(stats_.frames_rx.load()));
    reply.append(" frames_crc_errors ")
        .append(std::to_string(stats_.frames_crc_errors.load()));
    reply.append(" dict_entries ").append(std::to_string(stats_.dict_entries.load()));
    reply.append(" wire_format ")
        .append(client.wire == WireMode::kText ? "0" : "1");
    // Sharding + multi-tenant hardening (appended).  loop_sessions is the
    // session count of the answering loop.
    reply.append(" loops ").append(std::to_string(pool_.size()));
    reply.append(" loop_sessions ")
        .append(std::to_string(shard.session_count.load(std::memory_order_relaxed)));
    reply.append(" auth_failures ").append(std::to_string(stats_.auth_failures.load()));
    reply.append(" quota_drops ").append(std::to_string(stats_.quota_drops.load()));
    // Derived pipelines + per-format egress quota accounting (appended).
    reply.append(" stage_evals ").append(std::to_string(stats_.stage_evals.load()));
    reply.append(" tuples_derived ")
        .append(std::to_string(stats_.tuples_derived.load()));
    reply.append(" stages_active ")
        .append(std::to_string(stats_.stages_active.load()));
    reply.append(" quota_drops_text ")
        .append(std::to_string(stats_.quota_drops_text.load()));
    reply.append(" quota_drops_bin ")
        .append(std::to_string(stats_.quota_drops_bin.load()));
    // Flight recorder (appended; docs/protocol.md "Flight recorder").
    // Retired tallies plus the live recorder's per-tick mirror, so the keys
    // stay monotone across RECORD OFF / RECORD cycles.
    {
      std::lock_guard<std::mutex> record_lock(record_mu_);
      int64_t sealed = record_retired_.extents_sealed;
      int64_t recovered = record_retired_.extents_recovered;
      int64_t dropped = record_retired_.extents_dropped;
      int64_t cap_bytes = record_retired_.capture_bytes;
      int64_t captured = record_retired_.samples_captured;
      int64_t degraded = 0;
      FsyncPolicy policy = options_.record_fsync_policy;
      if (recorder_ != nullptr) {
        const Recorder::Stats& r = recorder_->stats();
        sealed += r.extents_sealed.load();
        recovered += r.extents_recovered.load();
        dropped += r.extents_dropped.load();
        cap_bytes += r.capture_bytes.load();
        captured += r.samples_captured.load();
        degraded = r.degraded.load();
        policy = recorder_->fsync_policy();
      }
      reply.append(" recording ").append(recorder_ != nullptr ? "1" : "0");
      reply.append(" extents_sealed ").append(std::to_string(sealed));
      reply.append(" extents_recovered ").append(std::to_string(recovered));
      reply.append(" extents_dropped ").append(std::to_string(dropped));
      reply.append(" capture_bytes ").append(std::to_string(cap_bytes));
      reply.append(" samples_captured ").append(std::to_string(captured));
      reply.append(" capture_degraded ").append(std::to_string(degraded));
      reply.append(" fsync_policy ")
          .append(std::to_string(static_cast<int>(policy)));
    }
  } else {  // LIST / LIST STAGES
    if (arg == "STAGES") {
      // Stage catalog: every spec grammar a session could attach, plus the
      // live shared-group count server-wide.  The count goes first for the
      // same reason as LIST's.
      reply.append("OK STAGES 4 ACTIVE ")
          .append(std::to_string(stats_.stages_active.load()));
      Reply(client, reply);
      Reply(client, "INFO STAGE DECIMATE <n>");
      Reply(client, "INFO STAGE EWMA <alpha>");
      Reply(client, "INFO STAGE ENVELOPE <window-ms>");
      Reply(client, "INFO STAGE SPECTRUM <n> [window]");
      return;
    }
    // The count goes FIRST: if the egress backlog drops some of the INFO
    // frames (whole-frame policy), the client can still tell the listing
    // was incomplete.
    reply.append("OK LIST ")
        .append(std::to_string(session.filter.pattern_count()))
        .append(" DELAY ")
        .append(std::to_string(session.scope->delay_ms()));
    // MODE goes LAST: a stage spec contains spaces, so clients parse the
    // mode as "everything after MODE".  It answers "what is my tap right
    // now" - a reconnecting client that missed a NOTICE DEGRADE (or wants
    // to confirm its replayed stage) reads it here.
    reply.append(" MODE ");
    if (session.stage.kind != StageSpec::Kind::kNone) {
      reply.append(session.stage.text);
    } else if (session.tap_mode == TapMode::kCoalesced) {
      reply.append("coalesced");
    } else {
      reply.append("every-sample");
    }
    Reply(client, reply);
    for (const std::string& pattern : session.filter.patterns()) {
      std::string info;
      info.append("INFO SUB ").append(pattern);
      if (session.stage.kind != StageSpec::Kind::kNone) {
        info.append(" STAGE ").append(session.stage.text);
      }
      Reply(client, info);
    }
    return;
  }

  if (reply.compare(0, 3, "ERR") == 0) {
    stats_.control_errors += 1;
  }
  Reply(client, reply);
}

void StreamServer::HandleRecord(std::string_view arg, std::string& reply) {
  std::lock_guard<std::mutex> lock(record_mu_);
  if (arg == "OFF") {
    if (recorder_ == nullptr) {
      reply.append("ERR RECORD not-recording");
      return;
    }
    // Unregister before Stop: the final drain must not race new spans.
    router_.RemoveScope(recorder_->scope());
    recorder_->Stop();
    FoldRecorderLocked();
    recorder_.reset();
    // record_path_ survives: the sealed log stays replayable.
    reply.append("OK RECORD OFF");
    return;
  }
  if (recorder_ != nullptr) {
    reply.append("ERR RECORD already-recording");
    return;
  }
  RecorderOptions ropts;
  ropts.log.extent_bytes = options_.record_extent_bytes;
  ropts.log.max_extents = options_.record_max_extents;
  ropts.log.fsync_policy = options_.record_fsync_policy;
  ropts.log.fsync_interval_ms = options_.record_fsync_interval_ms;
  ropts.poll_period_ms = options_.record_poll_period_ms;
  auto recorder = std::make_unique<Recorder>(std::move(ropts));
  if (!recorder->Start(std::string(arg))) {
    reply.append("ERR RECORD open-failed");
    return;
  }
  // Unfiltered registration: the flight recorder captures everything the
  // router sees, every tenant included (stored names keep their prefixes).
  router_.AddScope(recorder->scope());
  record_path_.assign(arg);
  recorder_ = std::move(recorder);
  reply.append("OK RECORD ").append(arg);
}

void StreamServer::HandleReplay(LoopShard& shard, int client_key, Client& client,
                                int64_t t0, int64_t t1, double speed) {
  ControlSession& session = *client.session;
  auto fail = [&](std::string_view body) {
    stats_.control_errors += 1;
    std::string err;
    err.append("ERR REPLAY ").append(body);
    Reply(client, err);
  };
  if (session.replay != nullptr) {
    fail("busy");
    return;
  }
  std::string path;
  {
    std::lock_guard<std::mutex> lock(record_mu_);
    if (recorder_ != nullptr) {
      // Seal the staged extent so the window is durable up to "now"; the
      // reader only ever sees CRC-sealed extents.
      recorder_->FlushNow();
    }
    path = record_path_;
  }
  if (path.empty()) {
    fail("no-recording");
    return;
  }
  ExtentReader reader;
  if (!reader.Open(path)) {
    fail("open-failed");
    return;
  }
  std::vector<ReplayRecord> window;
  reader.ReadWindow(t0, t1, &window);
  auto job = std::make_unique<ReplayJob>();
  job->names.assign(reader.names().begin(), reader.names().end());
  // The session filter gates the replay exactly like live routing: stored
  // names carry tenant prefixes and a tenant's filter only matches its own,
  // so time travel cannot cross namespaces.
  job->records.reserve(window.size());
  for (const ReplayRecord& r : window) {
    if (!session.filter.Matches(job->names[r.name])) {
      continue;
    }
    job->records.push_back(r);
    if (job->records.size() >= options_.replay_max_samples) {
      break;  // bounded: one verb cannot buffer an unbounded window
    }
  }
  std::string ok;
  ok.append("OK REPLAY ").append(std::to_string(job->records.size()));
  Reply(client, ok);
  if (speed <= 0.0 || job->records.empty()) {
    // Burst: the whole window leaves between the OK and the DONE marker.
    for (const ReplayRecord& r : job->records) {
      EmitReplayTuple(client, job->names[r.name], r.time_ms, r.value);
      job->emitted += 1;
    }
    std::string done;
    done.append("INFO REPLAY DONE ").append(std::to_string(job->emitted));
    Reply(client, done);
    return;
  }
  job->t0 = t0;
  job->speed = speed;
  job->start_ns = shard.loop->clock()->NowNs();
  session.replay = std::move(job);
  LoopShard* shard_ptr = &shard;
  session.replay->timer = shard.loop->AddTimeoutMs(
      kReplayTickMs,
      [this, shard_ptr, client_key]() { return ReplayTick(*shard_ptr, client_key); });
}

bool StreamServer::ReplayTick(LoopShard& shard, int client_key) {
  auto it = shard.clients.find(client_key);
  if (it == shard.clients.end()) {
    return false;  // unreachable: the timer dies with the client
  }
  Client& client = *it->second;
  if (client.session == nullptr || client.session->replay == nullptr) {
    return false;
  }
  ReplayJob& job = *client.session->replay;
  // Recorded time advances at speed x the loop clock (SimClock-exact).
  const Nanos elapsed = shard.loop->clock()->NowNs() - job.start_ns;
  const int64_t advanced_ms =
      static_cast<int64_t>(static_cast<double>(elapsed) / 1e6 * job.speed);
  const int64_t virtual_now = job.t0 + advanced_ms;
  while (job.next < job.records.size() &&
         job.records[job.next].time_ms <= virtual_now) {
    const ReplayRecord& r = job.records[job.next];
    EmitReplayTuple(client, job.names[r.name], r.time_ms, r.value);
    job.emitted += 1;
    job.next += 1;
  }
  if (job.next >= job.records.size()) {
    std::string done;
    done.append("INFO REPLAY DONE ").append(std::to_string(job.emitted));
    job.timer = 0;
    client.session->replay.reset();  // before Reply: REPLAY re-arms allowed
    Reply(client, done);
    return false;
  }
  return true;
}

void StreamServer::EmitReplayTuple(Client& client, std::string_view stored_name,
                                   int64_t time_ms, double value) {
  // Mirrors the echo tap exactly: prefix strip, egress quota, then a text
  // tuple line or a staged binary SAMPLES frame - a replayed sample is
  // indistinguishable from a live one on the wire.
  std::string_view name = StripTenantPrefix(client.ns, stored_name);
  if (!client.binary_egress) {
    if (!EgressAllowed(client)) {
      stats_.quota_drops += 1;
      stats_.quota_drops_text += 1;
      return;
    }
    int64_t evicted_before = client.writer.stats().units_evicted;
    std::string& buf = client.writer.BeginFrame();
    size_t begin = buf.size();
    AppendTuple(buf, time_ms, value, name);
    size_t frame_bytes = buf.size() - begin;
    if (client.writer.CommitFrame()) {
      stats_.tuples_echoed += 1;
      ChargeEgress(client, frame_bytes);
    } else {
      stats_.echo_dropped += 1;
    }
    stats_.echo_evicted += client.writer.stats().units_evicted - evicted_before;
    return;
  }
  wire::StageResult r = client.egress_enc.Add(name, time_ms, value);
  if (r == wire::StageResult::kFrameFull) {
    FlushEgress(client);
    r = client.egress_enc.Add(name, time_ms, value);
  }
  if (r != wire::StageResult::kStaged) {
    stats_.echo_dropped += 1;
    return;
  }
  if (client.egress_enc.staged_samples() >= kEgressFrameSamples) {
    FlushEgress(client);
    return;
  }
  ScheduleEgressFlush(client.key, client);
}

void StreamServer::CancelReplay(LoopShard& shard, Client& client) {
  if (client.session == nullptr || client.session->replay == nullptr) {
    return;
  }
  if (client.session->replay->timer != 0) {
    shard.loop->Remove(client.session->replay->timer);
  }
  client.session->replay.reset();
}

void StreamServer::FoldRecorderLocked() {
  const Recorder::Stats& r = recorder_->stats();
  record_retired_.samples_captured += r.samples_captured.load();
  record_retired_.extents_sealed += r.extents_sealed.load();
  record_retired_.extents_recovered += r.extents_recovered.load();
  record_retired_.extents_dropped += r.extents_dropped.load();
  record_retired_.capture_bytes += r.capture_bytes.load();
}

void StreamServer::HandleHello(Client& client, std::string_view rest) {
  stats_.control_commands += 1;
  std::string_view proto = NextToken(rest);
  std::string_view version = NextToken(rest);
  std::string_view excess = NextToken(rest);
  if (proto != "BIN" || version != "1" || !excess.empty() ||
      client.wire != WireMode::kText) {
    // Unsupported protocol/version (or a repeated HELLO): the connection
    // STAYS text - negotiation failure is never fatal, the client just keeps
    // the format it already has.
    stats_.control_errors += 1;
    Reply(client, "ERR HELLO unsupported-version");
    return;
  }
  // The acknowledgment travels as a text line (the client flips its parser
  // only after reading it); everything after it is framed.
  Reply(client, "OK HELLO BIN 1");
  client.wire = WireMode::kBinaryPending;
  client.decoder = std::make_unique<wire::FrameDecoder>();
  client.binary_egress = true;
}

void StreamServer::HandleAuth(Client& client, std::string_view rest) {
  stats_.control_commands += 1;
  std::string_view token = NextToken(rest);
  std::string_view excess = NextToken(rest);
  auto it = options_.auth_tokens.end();
  if (!token.empty() && excess.empty()) {
    it = options_.auth_tokens.find(token);
  }
  if (it == options_.auth_tokens.end()) {
    // One failure answer for every shape (missing token, trailing junk,
    // unknown token): a probe learns nothing about the token table.  The
    // failure is NOT fatal - the connection stays usable in whatever
    // namespace it already had.
    stats_.auth_failures += 1;
    stats_.control_errors += 1;
    Reply(client, "ERR AUTH bad-token");
    return;
  }
  client.ns = it->second;
  // The dictionary bound its routes under the previous identity; unbind so
  // binary ingest re-resolves under the new one.
  client.dict.clear();
  if (client.session != nullptr) {
    {
      // Re-scoping the registered filter bumps its epoch (route tables
      // re-snapshot); under the route lock because a rebuild on another loop
      // reads the namespace.  Spans already queued keep their old table and
      // drain as the identity they were routed under.
      std::unique_lock<std::mutex> routes = router_.LockRoutes();
      client.session->filter.SetNamespace(client.ns);
    }
    // A staged session re-keys: the namespace is part of the group identity
    // (and the group's own filter must re-scope with it).
    ReattachStage(*client.shard, client);
  }
  std::string reply;
  reply.append("OK AUTH ").append(client.ns);
  Reply(client, reply);
}

bool StreamServer::ChurnAllowed(Client& client) {
  if (options_.quota_sub_churn == 0) {
    return true;
  }
  Nanos now = client.loop->clock()->NowNs();
  Nanos window = MillisToNanos(std::max<int64_t>(1, options_.quota_churn_window_ms));
  if (client.churn_window_start_ns < 0 || now - client.churn_window_start_ns >= window) {
    client.churn_window_start_ns = now;
    client.churn_count = 0;
  }
  if (client.churn_count >= options_.quota_sub_churn) {
    return false;
  }
  client.churn_count += 1;
  return true;
}

bool StreamServer::EgressAllowed(Client& client) {
  int64_t rate = options_.quota_egress_bytes_per_sec;
  if (rate <= 0) {
    return true;
  }
  Nanos now = client.loop->clock()->NowNs();
  if (client.egress_refill_ns < 0) {
    client.egress_refill_ns = now;
    client.egress_tokens = rate;  // full burst on first use
  } else if (now > client.egress_refill_ns) {
    Nanos dt = now - client.egress_refill_ns;
    client.egress_refill_ns = now;
    if (dt >= 1'000'000'000) {
      client.egress_tokens = rate;  // a second idle refills outright
    } else {
      // dt < 1e9 bounds the product for any sane rate; double keeps the
      // intermediate safe for absurd ones.
      int64_t refill = static_cast<int64_t>(static_cast<double>(dt) * 1e-9 *
                                            static_cast<double>(rate));
      client.egress_tokens = std::min<int64_t>(rate, client.egress_tokens + refill);
    }
  }
  return client.egress_tokens > 0;
}

void StreamServer::ChargeEgress(Client& client, size_t bytes) {
  if (options_.quota_egress_bytes_per_sec <= 0) {
    return;
  }
  // Deficit bucket: the frame that spends the last token may overdraw; the
  // refill pays the debt before the next frame passes.
  client.egress_tokens -= static_cast<int64_t>(bytes);
}

StreamServer::ControlSession& StreamServer::EnsureSession(LoopShard& shard, int client_key,
                                                          Client& client) {
  if (client.session != nullptr) {
    return *client.session;
  }
  auto session = std::make_unique<ControlSession>();
  if (options_.control_sndbuf_bytes > 0) {
    client.socket.SetSendBufferBytes(options_.control_sndbuf_bytes);
  }
  session->scope = std::make_unique<Scope>(
      shard.loop, ScopeOptions{.name = "control-" + std::to_string(client_key),
                               .width = options_.control_scope_width,
                               .height = options_.control_scope_height});
  Scope* scope = session->scope.get();
  // Sharded servers build route tables from any loop: the scope must gate
  // its poll tick against them (no-op at loops = 1).
  scope->SetConcurrent(pool_.size() > 1);
  scope->SetPollingMode(options_.control_poll_period_ms);
  // Judge producer timestamps on the server's existing display axis: a
  // session created mid-stream must not restart scope time at zero.
  if (Scope* reference = router_.FirstScope()) {
    scope->AdoptTimeBase(*reference);
  }
  // Tenant scoping before registration (no route lock needed: the filter is
  // not yet visible to rebuilds): this session only ever matches names
  // carrying its namespace prefix.
  session->filter.SetNamespace(client.ns);
  client.session = std::move(session);
  // Egress: every sample routed to the session scope is re-serialized down
  // the connection (through the client's writer, armed at accept); overload
  // discards whole tuples only, victim per the configured policy
  // (drop-oldest evictions surface as echo_evicted).  Session scopes are
  // pure display-only consumers EXCEPT for this tap: the echo contract is
  // per-sample, so the tap registers as kEverySample and the route table
  // keeps the session's slots on the history path.  A session pinned at its
  // egress cap for degrade_stalled_ms is downgraded to TapMode::kCoalesced
  // by Sweep() - the full last-wins fold for free - and restored once the
  // backlog drains calm.
  InstallEchoTap(shard, client_key, client, TapMode::kEverySample);
  scope->StartPolling();
  router_.AddScope(scope, &client.session->filter);
  shard.session_count.fetch_add(1, std::memory_order_relaxed);
  stats_.sessions_opened += 1;
  return *client.session;
}

void StreamServer::Reply(Client& client, std::string_view line) {
  if (client.binary_egress && !client.egress_enc.empty()) {
    // Staged echo samples precede the reply on the wire (ordering).
    FlushEgress(client);
  }
  // Control replies are exempt from the egress quota: protocol liveness
  // (PONG, ERR, NOTICE) must survive a tenant spending its byte budget.
  int64_t evicted_before = client.writer.stats().units_evicted;
  std::string& buf = client.writer.BeginFrame();
  uint32_t weight = 1;
  if (client.binary_egress) {
    wire::WireEncoder::EmitTextLineFrame(buf, line);
    weight = 0;  // replies carry no tuples; evicting one costs no samples
  } else {
    buf.append(line);
    buf.push_back('\n');
  }
  if (!client.writer.CommitFrame(weight)) {
    stats_.echo_dropped += 1;
  }
  stats_.echo_evicted += client.writer.stats().units_evicted - evicted_before;
}

void StreamServer::InstallEchoTap(LoopShard& shard, int client_key, Client& client,
                                  TapMode mode) {
  (void)shard;
  client.session->tap_mode = mode;
  // The Client object is stable (owned by unique_ptr in the shard map, and
  // the tap dies with the session scope before it does); the tap runs on
  // the client's own loop at scope drain time.
  Client* cp = &client;
  if (!client.binary_egress) {
    client.session->scope->SetBufferedTap(
        [this, cp](std::string_view name, int64_t time_ms, double value) {
          name = StripTenantPrefix(cp->ns, name);
          if (!EgressAllowed(*cp)) {
            stats_.quota_drops += 1;
            stats_.quota_drops_text += 1;
            return;
          }
          FramedWriter* writer = &cp->writer;
          int64_t evicted_before = writer->stats().units_evicted;
          std::string& buf = writer->BeginFrame();
          size_t begin = buf.size();
          AppendTuple(buf, time_ms, value, name);
          size_t frame_bytes = buf.size() - begin;
          if (writer->CommitFrame()) {
            stats_.tuples_echoed += 1;
            ChargeEgress(*cp, frame_bytes);
          } else {
            stats_.echo_dropped += 1;
          }
          stats_.echo_evicted += writer->stats().units_evicted - evicted_before;
        },
        mode);
    return;
  }
  // Binary session: samples stage into the connection's wire encoder and
  // seal into multi-tuple frames - either when a frame's worth accumulates
  // or on the deferred flush at the end of the loop iteration, so a trickle
  // is never stranded.  The egress quota is applied at FlushEgress, per
  // sealed frame at its actual wire size - not here per sample at a text
  // estimate - so binary subscribers are charged what actually leaves.
  client.session->scope->SetBufferedTap(
      [this, client_key, cp](std::string_view name, int64_t time_ms, double value) {
        name = StripTenantPrefix(cp->ns, name);
        wire::StageResult r = cp->egress_enc.Add(name, time_ms, value);
        if (r == wire::StageResult::kFrameFull) {
          FlushEgress(*cp);
          r = cp->egress_enc.Add(name, time_ms, value);
        }
        if (r != wire::StageResult::kStaged) {
          stats_.echo_dropped += 1;
          return;
        }
        if (cp->egress_enc.staged_samples() >= kEgressFrameSamples) {
          FlushEgress(*cp);
          return;
        }
        ScheduleEgressFlush(client_key, *cp);
      },
      mode);
}

void StreamServer::FlushEgress(Client& client) {
  size_t n = client.egress_enc.staged_samples();
  if (n == 0) {
    return;
  }
  // Seal outside the writer, then quota-gate the WHOLE frame at its actual
  // wire size: a refused frame is discarded in one piece (quota_drops keeps
  // the per-tuple tally, quota_drops_bin counts the frame).
  client.egress_scratch.clear();
  client.egress_enc.EmitFrame(client.egress_scratch);
  if (!EgressAllowed(client)) {
    stats_.quota_drops += static_cast<int64_t>(n);
    stats_.quota_drops_bin += 1;
    return;
  }
  int64_t evicted_before = client.writer.stats().units_evicted;
  std::string& buf = client.writer.BeginFrame();
  buf.append(client.egress_scratch);
  if (client.writer.CommitFrame(static_cast<uint32_t>(n))) {
    stats_.tuples_echoed += static_cast<int64_t>(n);
    ChargeEgress(client, client.egress_scratch.size());
  } else {
    stats_.echo_dropped += static_cast<int64_t>(n);
  }
  stats_.echo_evicted += client.writer.stats().units_evicted - evicted_before;
}

void StreamServer::ScheduleEgressFlush(int client_key, Client& client) {
  if (client.egress_flush_pending) {
    return;
  }
  client.egress_flush_pending = true;
  std::weak_ptr<StreamServer> weak_self = WeakSelf();
  LoopShard* shard = client.shard;
  client.loop->Invoke([client_key, weak_self, shard]() {
    std::shared_ptr<StreamServer> server = weak_self.lock();
    if (server == nullptr) {
      return;
    }
    auto it = shard->clients.find(client_key);
    if (it == shard->clients.end()) {
      return;
    }
    it->second->egress_flush_pending = false;
    server->FlushEgress(*it->second);
  });
}

void StreamServer::BindDict(Client& client, uint32_t id, std::string_view name) {
  // The decoder validated id's range and the name's length; resize is
  // bounded by kMaxDictId.
  if (client.dict.size() < id) {
    client.dict.resize(id);
  }
  DictEntry& entry = client.dict[id - 1];
  if (entry.bound && entry.name == name) {
    return;  // steady state: every frame redeclares its bindings, a no-op
  }
  if (name.find(kNamespaceSep) != std::string_view::npos) {
    // The namespace separator is the server's own tenant-identity byte: a
    // wire name carrying it could impersonate another tenant.  Rejected
    // like any malformed declaration; the id stays unbound.
    entry.bound = false;
    stats_.parse_errors += 1;
    return;
  }
  entry.name.assign(name);
  entry.routed_name = NamespacedName(client.ns, name);
  entry.bound = true;
  uint32_t route = 0;
  entry.has_route = router_.ResolveRoute(entry.routed_name, &route);
  entry.route = route;
  stats_.dict_entries += 1;
}

void StreamServer::IngestRecords(Client& client, int64_t base_time_ms,
                                 const char* records, size_t n) {
  // Streams repeat ids in runs (a producer emits a burst per signal): the
  // dict entry is looked up once per run, not per sample.
  uint32_t run_id = 0;
  bool run_valid = false;
  const DictEntry* entry = nullptr;
  for (size_t i = 0; i < n; ++i, records += wire::kSampleRecordBytes) {
    uint32_t id = wire::LoadU32(records);
    int64_t time_ms = base_time_ms + wire::LoadI32(records + 4);
    double value = wire::LoadF64(records + 8);
    if (id == 0) {
      // Unnamed two-field form: the single-signal shim path.
      stats_.tuples += 1;
      if (ingest_tap_) {
        ingest_tap_(TupleView{time_ms, value, {}});
      }
      router_.Append({}, time_ms, value);
      continue;
    }
    if (!run_valid || id != run_id) {
      run_id = id;
      run_valid = true;
      entry = id <= client.dict.size() && client.dict[id - 1].bound
                  ? &client.dict[id - 1]
                  : nullptr;
    }
    if (entry == nullptr) {
      // Unknown id: the frame's dict section did not declare it (producer
      // bug); counted like any other malformed tuple.
      stats_.parse_errors += 1;
      continue;
    }
    stats_.tuples += 1;
    if (ingest_tap_) {
      ingest_tap_(TupleView{time_ms, value, entry->name});
    }
    if (entry->has_route) {
      router_.AppendRoute(entry->route, time_ms, value);
    } else {
      router_.Append(entry->routed_name, time_ms, value);
    }
  }
}

// -- Derived-signal pipelines (docs/protocol.md "Derived-signal pipelines") --

bool StreamServer::ParseStageSpec(std::string_view verb, std::string_view arg,
                                  std::string_view arg2, StageSpec& spec,
                                  std::string& err) {
  auto parse_int = [](std::string_view s, int64_t& out) {
    auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
    return !s.empty() && ec == std::errc{} && p == s.data() + s.size();
  };
  if (verb == "DECIMATE") {
    spec.kind = StageSpec::Kind::kDecimate;
    if (!parse_int(arg, spec.factor) || spec.factor < 1) {
      err = "ERR DECIMATE bad-factor";
      return false;
    }
    spec.text.append("DECIMATE ").append(std::to_string(spec.factor));
    return true;
  }
  if (verb == "EWMA") {
    spec.kind = StageSpec::Kind::kEwma;
    auto [p, ec] = std::from_chars(arg.data(), arg.data() + arg.size(), spec.alpha);
    if (arg.empty() || ec != std::errc{} || p != arg.data() + arg.size() ||
        !(spec.alpha > 0.0) || spec.alpha > 1.0) {
      err = "ERR EWMA bad-alpha";
      return false;
    }
    // Canonical shortest form: "EWMA .5" and "EWMA 0.50" key the same group.
    char buf[32];
    auto r = std::to_chars(buf, buf + sizeof(buf), spec.alpha);
    spec.text.append("EWMA ").append(buf, static_cast<size_t>(r.ptr - buf));
    return true;
  }
  if (verb == "ENVELOPE") {
    spec.kind = StageSpec::Kind::kEnvelope;
    if (!parse_int(arg, spec.window_ms) || spec.window_ms < 1) {
      err = "ERR ENVELOPE bad-window";
      return false;
    }
    spec.text.append("ENVELOPE ").append(std::to_string(spec.window_ms));
    return true;
  }
  // SPECTRUM n [window]
  spec.kind = StageSpec::Kind::kSpectrum;
  if (!parse_int(arg, spec.factor) || spec.factor < 2 || spec.factor > 65536) {
    err = "ERR SPECTRUM bad-size";
    return false;
  }
  std::string_view window = arg2.empty() ? std::string_view("hann") : arg2;
  if (window == "rect" || window == "rectangular") {
    spec.window = WindowKind::kRectangular;
    window = "rect";
  } else if (window == "hann") {
    spec.window = WindowKind::kHann;
  } else if (window == "hamming") {
    spec.window = WindowKind::kHamming;
  } else if (window == "blackman") {
    spec.window = WindowKind::kBlackman;
  } else {
    err = "ERR SPECTRUM bad-window";
    return false;
  }
  spec.text.append("SPECTRUM ")
      .append(std::to_string(spec.factor))
      .append(" ")
      .append(window);
  return true;
}

std::string StreamServer::StageKey(std::string_view ns, int64_t delay_ms,
                                   const SignalFilter& filter,
                                   std::string_view spec) {
  // The namespace separator cannot appear in a pattern, a namespace or a
  // spec (BindDict and the text grammar both reject it), so the join is
  // unambiguous.  Patterns sorted: subscription order must not split groups.
  std::vector<std::string> patterns = filter.patterns();
  std::sort(patterns.begin(), patterns.end());
  std::string key;
  key.append(ns);
  key.push_back(kNamespaceSep);
  key.append(std::to_string(delay_ms));
  key.push_back(kNamespaceSep);
  key.append(spec);
  for (const std::string& pattern : patterns) {
    key.push_back(kNamespaceSep);
    key.append(pattern);
  }
  return key;
}

void StreamServer::AttachStage(LoopShard& shard, Client& client,
                               const StageSpec& spec) {
  ControlSession& session = *client.session;
  std::string key =
      StageKey(client.ns, session.scope->delay_ms(), session.filter, spec.text);
  if (session.group != nullptr && session.group->key == key) {
    session.stage = spec;  // same group (e.g. a replayed verb): nothing moves
    return;
  }
  if (session.group != nullptr) {
    LeaveGroup(shard, client);
  } else {
    // The session's own scope goes dormant while staged: the group's scope
    // is the one the router feeds, and the member count is what keeps the
    // shared evaluation honest.
    router_.RemoveScope(session.scope.get());
  }
  session.stage = spec;
  auto it = shard.stage_groups.find(key);
  if (it == shard.stage_groups.end()) {
    auto group = std::make_unique<StageGroup>();
    StageGroup* g = group.get();
    g->key = key;
    g->ns = client.ns;
    g->spec = session.stage;
    g->shard = &shard;
    for (const std::string& pattern : session.filter.patterns()) {
      g->filter.Add(pattern);
    }
    g->filter.SetNamespace(client.ns);
    int id = next_stage_id_.fetch_add(1, std::memory_order_relaxed);
    g->scope = std::make_unique<Scope>(
        shard.loop, ScopeOptions{.name = "stage-" + std::to_string(id),
                                 .width = options_.control_scope_width,
                                 .height = options_.control_scope_height});
    Scope* scope = g->scope.get();
    scope->SetConcurrent(pool_.size() > 1);
    scope->SetPollingMode(options_.control_poll_period_ms);
    // Same time axis and late-drop window as the sessions it serves.
    scope->AdoptTimeBase(*session.scope);
    scope->SetDelayMs(session.scope->delay_ms());
    // The evaluation tap: every routed sample evaluates the stage ONCE,
    // however many members ride the group (stats_.stage_evals is the
    // share-once proof the tests assert on).
    scope->SetBufferedTap(
        [this, g](std::string_view name, int64_t time_ms, double value) {
          EvaluateStage(*g, name, time_ms, value);
        },
        TapMode::kEverySample);
    scope->StartPolling();
    router_.AddScope(scope, &g->filter);
    stats_.stages_active += 1;
    it = shard.stage_groups.emplace(std::move(key), std::move(group)).first;
  }
  session.group = it->second.get();
  it->second->members.push_back(&client);
}

void StreamServer::ReattachStage(LoopShard& shard, Client& client) {
  if (client.session == nullptr ||
      client.session->stage.kind == StageSpec::Kind::kNone) {
    return;
  }
  AttachStage(shard, client, client.session->stage);
}

void StreamServer::DetachStage(LoopShard& shard, Client& client, TapMode mode) {
  LeaveGroup(shard, client);
  client.session->stage = StageSpec{};
  // Restore the session's own scope: tap first (the scope is unregistered,
  // so no rebuild can read it mid-swap), then re-register.
  InstallEchoTap(shard, client.key, client, mode);
  router_.AddScope(client.session->scope.get(), &client.session->filter);
}

void StreamServer::LeaveGroup(LoopShard& shard, Client& client) {
  StageGroup* g = client.session->group;
  client.session->group = nullptr;
  auto member = std::find(g->members.begin(), g->members.end(), &client);
  if (member != g->members.end()) {
    g->members.erase(member);
  }
  if (!g->members.empty()) {
    return;
  }
  // Last member out: the group dies (epoch bump: routes re-snapshot).  A
  // queued deferred flush finds the key gone and no-ops.
  router_.RemoveScope(g->scope.get());
  stats_.stages_active -= 1;
  shard.stage_groups.erase(g->key);
}

void StreamServer::EvaluateStage(StageGroup& g, std::string_view name,
                                 int64_t time_ms, double value) {
  stats_.stage_evals += 1;
  // Members share the group's namespace (part of the key): strip once.
  name = StripTenantPrefix(g.ns, name);
  auto it = g.signals.find(name);
  if (it == g.signals.end()) {
    it = g.signals.try_emplace(std::string(name)).first;
  }
  StageGroup::SignalState& st = it->second;
  switch (g.spec.kind) {
    case StageSpec::Kind::kDecimate:
      // The first sample of a signal emits, then every factor-th after it:
      // a subscriber sees data immediately at 1/n the rate.
      if (st.count++ % g.spec.factor == 0) {
        EmitDerived(g, name, time_ms, value);
      }
      return;
    case StageSpec::Kind::kEwma:
      st.ewma = st.has_ewma
                    ? g.spec.alpha * value + (1.0 - g.spec.alpha) * st.ewma
                    : value;
      st.has_ewma = true;
      EmitDerived(g, name, time_ms, st.ewma);
      return;
    case StageSpec::Kind::kEnvelope: {
      if (st.has_window && time_ms - st.window_start_ms >= g.spec.window_ms) {
        // Close the window: one <name>.min and one <name>.max tuple,
        // stamped at the window's end.
        int64_t end_ms = st.window_start_ms + g.spec.window_ms;
        st.scratch_name.assign(name);
        size_t base = st.scratch_name.size();
        st.scratch_name.append(".min");
        EmitDerived(g, st.scratch_name, end_ms, st.env.LowAt(0));
        st.scratch_name.resize(base);
        st.scratch_name.append(".max");
        EmitDerived(g, st.scratch_name, end_ms, st.env.HighAt(0));
        st.env.Reset();
        st.has_window = false;
      }
      if (!st.has_window) {
        st.has_window = true;
        st.window_start_ms = time_ms;
      }
      // A width-1 envelope is a running min/max fold over the open window.
      st.one[0] = value;
      st.env.AddSweep(st.one);
      return;
    }
    case StageSpec::Kind::kSpectrum: {
      if (st.block.empty()) {
        st.block_start_ms = time_ms;
      }
      st.block.push_back(value);
      st.last_ms = time_ms;
      if (st.block.size() < static_cast<size_t>(g.spec.factor)) {
        return;
      }
      // Sample rate from the block's own timestamps (producers own the
      // clock); degenerate spacing falls back to 1 kHz.
      double rate_hz = 1000.0;
      if (st.last_ms > st.block_start_ms) {
        rate_hz = static_cast<double>(st.block.size() - 1) * 1000.0 /
                  static_cast<double>(st.last_ms - st.block_start_ms);
      }
      Spectrum spectrum =
          ComputeSpectrum(st.block, rate_hz, {.window = g.spec.window});
      st.block.clear();
      // Bins stream as synthetic signals <name>.bin0 .. <name>.binN/2, all
      // stamped at the block's last sample.
      for (size_t bin = 0; bin < spectrum.power_db.size(); ++bin) {
        st.scratch_name.assign(name);
        st.scratch_name.append(".bin");
        st.scratch_name.append(std::to_string(bin));
        EmitDerived(g, st.scratch_name, st.last_ms, spectrum.power_db[bin]);
      }
      return;
    }
    case StageSpec::Kind::kNone:
      return;
  }
}

void StreamServer::EmitDerived(StageGroup& g, std::string_view name,
                               int64_t time_ms, double value) {
  bool any_text = false;
  bool any_binary = false;
  for (Client* member : g.members) {
    (member->binary_egress ? any_binary : any_text) = true;
  }
  if (any_text) {
    // Formatted ONCE; every text member commits the same bytes.
    g.text_scratch.clear();
    AppendTuple(g.text_scratch, time_ms, value, name);
    for (Client* member : g.members) {
      if (member->binary_egress) {
        continue;
      }
      if (!EgressAllowed(*member)) {
        stats_.quota_drops += 1;
        stats_.quota_drops_text += 1;
        continue;
      }
      FramedWriter& writer = member->writer;
      int64_t evicted_before = writer.stats().units_evicted;
      std::string& buf = writer.BeginFrame();
      buf.append(g.text_scratch);
      if (writer.CommitFrame()) {
        stats_.tuples_echoed += 1;
        stats_.tuples_derived += 1;
        ChargeEgress(*member, g.text_scratch.size());
      } else {
        stats_.echo_dropped += 1;
      }
      stats_.echo_evicted += writer.stats().units_evicted - evicted_before;
    }
  }
  if (any_binary) {
    // Frame-relay: staged once into the group's encoder; the sealed frame
    // broadcasts byte-identical to every binary member (SAMPLES frames are
    // self-contained - per-frame dictionaries - so sharing is sound).
    wire::StageResult r = g.enc.Add(name, time_ms, value);
    if (r == wire::StageResult::kFrameFull) {
      FlushGroupEgress(g);
      r = g.enc.Add(name, time_ms, value);
    }
    if (r != wire::StageResult::kStaged) {
      stats_.echo_dropped += 1;
      return;
    }
    if (g.enc.staged_samples() >= kEgressFrameSamples) {
      FlushGroupEgress(g);
    } else {
      ScheduleGroupFlush(g);
    }
  }
}

void StreamServer::FlushGroupEgress(StageGroup& g) {
  size_t n = g.enc.staged_samples();
  if (n == 0) {
    return;
  }
  g.frame_scratch.clear();
  g.enc.EmitFrame(g.frame_scratch);
  for (Client* member : g.members) {
    if (!member->binary_egress) {
      continue;
    }
    if (!EgressAllowed(*member)) {
      stats_.quota_drops += static_cast<int64_t>(n);
      stats_.quota_drops_bin += 1;
      continue;
    }
    FramedWriter& writer = member->writer;
    int64_t evicted_before = writer.stats().units_evicted;
    std::string& buf = writer.BeginFrame();
    buf.append(g.frame_scratch);
    if (writer.CommitFrame(static_cast<uint32_t>(n))) {
      stats_.tuples_echoed += static_cast<int64_t>(n);
      stats_.tuples_derived += static_cast<int64_t>(n);
      ChargeEgress(*member, g.frame_scratch.size());
    } else {
      stats_.echo_dropped += static_cast<int64_t>(n);
    }
    stats_.echo_evicted += writer.stats().units_evicted - evicted_before;
  }
}

void StreamServer::ScheduleGroupFlush(StageGroup& g) {
  if (g.flush_pending) {
    return;
  }
  g.flush_pending = true;
  std::weak_ptr<StreamServer> weak_self = WeakSelf();
  LoopShard* shard = g.shard;
  // Looked up by key at fire time: the group may have died in between.
  shard->loop->Invoke([weak_self, shard, key = g.key]() {
    std::shared_ptr<StreamServer> server = weak_self.lock();
    if (server == nullptr) {
      return;
    }
    auto it = shard->stage_groups.find(key);
    if (it == shard->stage_groups.end()) {
      return;
    }
    it->second->flush_pending = false;
    server->FlushGroupEgress(*it->second);
  });
}

bool StreamServer::Sweep(LoopShard& shard) {
  Nanos now = shard.loop->clock()->NowNs();

  if (options_.idle_timeout_ms > 0) {
    Nanos cutoff = MillisToNanos(options_.idle_timeout_ms);
    std::vector<int> idle;  // collect first: DropClient mutates the map
    for (const auto& [key, client] : shard.clients) {
      if (now - client->last_activity_ns >= cutoff) {
        idle.push_back(key);
      }
    }
    for (int key : idle) {
      stats_.clients_idle_dropped += 1;
      DropClient(shard, key);
    }
  }

  if (options_.degrade_stalled_ms > 0) {
    Nanos window = MillisToNanos(options_.degrade_stalled_ms);
    for (auto& [key, client] : shard.clients) {
      ControlSession* s = client->session.get();
      if (s == nullptr) {
        continue;
      }
      if (s->group != nullptr) {
        // Staged sessions are not degraded: their own tap is dormant, and
        // the stage already bounds the rate by design - a member that still
        // cannot keep up sheds whole frames via its writer policy.
        continue;
      }
      FramedWriter& writer = client->writer;
      const FramedWriter::Stats& w = writer.stats();
      int64_t loss = w.frames_dropped + w.frames_evicted;
      // "Pinned" = the backlog is holding at least half its cap, or frames
      // were lost since the last sweep - either way the subscriber is not
      // keeping up with the per-sample echo.
      bool pinned = writer.pending_bytes() * 2 >= options_.control_max_buffer ||
                    loss != s->last_loss_frames;
      // "Calm" = backlog nearly drained AND no loss for a whole window.
      bool calm = writer.pending_bytes() * 8 <= options_.control_max_buffer &&
                  loss == s->last_loss_frames;
      s->last_loss_frames = loss;

      if (s->tap_mode == TapMode::kEverySample) {
        s->calm_since_ns = -1;
        if (!pinned) {
          s->stalled_since_ns = -1;
        } else if (s->stalled_since_ns < 0) {
          s->stalled_since_ns = now;
        } else if (now - s->stalled_since_ns >= window) {
          // Degrade instead of evicting: the subscriber keeps the freshest
          // value of every signal at display granularity.  The NOTICE rides
          // the same (pinned) writer, so delivery is best-effort - the
          // taps_downgraded counter is the authoritative record.  Tap swap
          // under the route lock: rebuilds read the tap's history need.
          {
            std::unique_lock<std::mutex> routes = router_.LockRoutes();
            InstallEchoTap(shard, key, *client, TapMode::kCoalesced);
          }
          stats_.taps_downgraded += 1;
          Reply(*client, "NOTICE DEGRADE coalesced");
          s->stalled_since_ns = -1;
        }
      } else {
        s->stalled_since_ns = -1;
        if (!calm) {
          s->calm_since_ns = -1;
        } else if (s->calm_since_ns < 0) {
          s->calm_since_ns = now;
        } else if (now - s->calm_since_ns >= window) {
          {
            std::unique_lock<std::mutex> routes = router_.LockRoutes();
            InstallEchoTap(shard, key, *client, TapMode::kEverySample);
          }
          stats_.taps_restored += 1;
          Reply(*client, "NOTICE RESTORE every-sample");
          s->calm_since_ns = -1;
        }
      }
    }
  }
  return true;
}

void StreamServer::DropClient(LoopShard& shard, int client_key) {
  auto it = shard.clients.find(client_key);
  if (it == shard.clients.end()) {
    return;
  }
  if (it->second->watch != 0) {
    shard.loop->Remove(it->second->watch);
  }
  // An in-flight paced replay dies with its client (timer first: it must
  // not fire against the erased entry).
  CancelReplay(shard, *it->second);
  if (it->second->session != nullptr) {
    if (it->second->session->group != nullptr) {
      // Leave the shared stage first (possibly tearing the group down); the
      // session's own scope is unregistered while staged, so the
      // RemoveScope below is then a no-op.
      LeaveGroup(shard, *it->second);
    }
    // Unregister the session scope (epoch bump: routes re-snapshot) before
    // its storage goes away with the client entry.
    router_.RemoveScope(it->second->session->scope.get());
    shard.session_count.fetch_sub(1, std::memory_order_relaxed);
  }
  // The retired writer's adaptive transitions fold into the server total
  // so STATS stays monotone across disconnects.
  stats_.policy_switches += it->second->writer.stats().policy_switches;
  shard.clients.erase(it);
  shard.client_count.fetch_sub(1, std::memory_order_relaxed);
  stats_.disconnections += 1;
}

}  // namespace gscope
