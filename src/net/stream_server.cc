#include "net/stream_server.h"

#include <algorithm>

#include "core/tuple.h"

namespace gscope {

StreamServer::StreamServer(MainLoop* loop, Scope* scope, StreamServerOptions options)
    : loop_(loop), options_(options) {
  if (scope != nullptr) {
    scopes_.push_back(scope);
  }
}

bool StreamServer::AddScope(Scope* scope) {
  if (scope == nullptr ||
      std::find(scopes_.begin(), scopes_.end(), scope) != scopes_.end()) {
    return false;
  }
  scopes_.push_back(scope);
  return true;
}

bool StreamServer::RemoveScope(Scope* scope) {
  auto it = std::find(scopes_.begin(), scopes_.end(), scope);
  if (it == scopes_.end()) {
    return false;
  }
  scopes_.erase(it);
  return true;
}

StreamServer::~StreamServer() { Close(); }

bool StreamServer::Listen(uint16_t port) {
  Close();
  listener_ = Socket::Listen(port, &port_);
  if (!listener_.valid()) {
    return false;
  }
  accept_watch_ = loop_->AddIoWatch(listener_.fd(), IoCondition::kIn,
                                    [this](int, IoCondition) { return OnAcceptReady(); });
  return accept_watch_ != 0;
}

void StreamServer::Close() {
  if (accept_watch_ != 0) {
    loop_->Remove(accept_watch_);
    accept_watch_ = 0;
  }
  listener_.Close();
  for (auto& [key, client] : clients_) {
    if (client->watch != 0) {
      loop_->Remove(client->watch);
    }
  }
  clients_.clear();
  port_ = 0;
}

bool StreamServer::OnAcceptReady() {
  while (true) {
    Socket conn = listener_.Accept();
    if (!conn.valid()) {
      break;
    }
    if (clients_.size() >= options_.max_clients) {
      stats_.refused += 1;
      continue;  // RAII closes the connection
    }
    auto client = std::make_unique<Client>();
    client->socket = std::move(conn);
    int key = next_client_key_++;
    int fd = client->socket.fd();
    client->watch = loop_->AddIoWatch(
        fd, IoCondition::kIn, [this, key](int, IoCondition cond) { return OnClientReady(key, cond); });
    if (client->watch == 0) {
      continue;
    }
    clients_[key] = std::move(client);
    stats_.connections += 1;
  }
  return true;
}

bool StreamServer::OnClientReady(int client_key, IoCondition cond) {
  auto it = clients_.find(client_key);
  if (it == clients_.end()) {
    return false;
  }
  Client& client = *it->second;

  if (Has(cond, IoCondition::kErr)) {
    DropClient(client_key);
    return false;
  }

  char buf[4096];
  while (true) {
    IoResult r = client.socket.Read(buf, sizeof(buf));
    if (r.status == IoResult::Status::kOk) {
      stats_.bytes += static_cast<int64_t>(r.bytes);
      ProcessData(client, buf, r.bytes);
      continue;
    }
    if (r.status == IoResult::Status::kWouldBlock) {
      return true;
    }
    // EOF or error: flush any final unterminated line, then drop.
    if (!client.line_buffer.empty()) {
      HandleLine(client.line_buffer);
      client.line_buffer.clear();
    }
    DropClient(client_key);
    return false;
  }
}

void StreamServer::ProcessData(Client& client, const char* data, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    if (data[i] == '\n') {
      HandleLine(client.line_buffer);
      client.line_buffer.clear();
    } else {
      client.line_buffer.push_back(data[i]);
    }
  }
}

void StreamServer::HandleLine(const std::string& line) {
  if (IsIgnorableLine(line)) {
    return;
  }
  std::optional<Tuple> tuple = ParseTuple(line);
  if (!tuple.has_value()) {
    stats_.parse_errors += 1;
    return;
  }
  stats_.tuples += 1;
  for (Scope* scope : scopes_) {
    if (options_.auto_create_signals && !tuple->name.empty() &&
        scope->FindSignal(tuple->name) == 0) {
      SignalSpec spec;
      spec.name = tuple->name;
      spec.source = BufferSource{};
      scope->AddSignal(spec);
    }
    if (!scope->PushBuffered(tuple->name, tuple->time_ms, tuple->value)) {
      stats_.dropped_late += 1;
    }
  }
}

void StreamServer::DropClient(int client_key) {
  auto it = clients_.find(client_key);
  if (it == clients_.end()) {
    return;
  }
  if (it->second->watch != 0) {
    loop_->Remove(it->second->watch);
  }
  clients_.erase(it);
  stats_.disconnections += 1;
}

}  // namespace gscope
