#include "net/stream_server.h"

#include <cstring>

namespace gscope {

StreamServer::StreamServer(MainLoop* loop, Scope* scope, StreamServerOptions options)
    : loop_(loop),
      options_(options),
      router_({.auto_create_signals = options.auto_create_signals,
               .fanout_shards = options.fanout_shards,
               .worker_threads = options.fanout_workers}) {
  if (scope != nullptr) {
    router_.AddScope(scope);
  }
}

bool StreamServer::AddScope(Scope* scope) { return router_.AddScope(scope); }

bool StreamServer::RemoveScope(Scope* scope) { return router_.RemoveScope(scope); }

StreamServer::~StreamServer() { Close(); }

bool StreamServer::Listen(uint16_t port) {
  Close();
  listener_ = Socket::Listen(port, &port_);
  if (!listener_.valid()) {
    return false;
  }
  accept_watch_ = loop_->AddIoWatch(listener_.fd(), IoCondition::kIn,
                                    [this](int, IoCondition) { return OnAcceptReady(); });
  return accept_watch_ != 0;
}

void StreamServer::Close() {
  if (accept_watch_ != 0) {
    loop_->Remove(accept_watch_);
    accept_watch_ = 0;
  }
  listener_.Close();
  for (auto& [key, client] : clients_) {
    if (client->watch != 0) {
      loop_->Remove(client->watch);
    }
  }
  clients_.clear();
  port_ = 0;
}

bool StreamServer::OnAcceptReady() {
  while (true) {
    Socket conn = listener_.Accept();
    if (!conn.valid()) {
      break;
    }
    if (clients_.size() >= options_.max_clients) {
      stats_.refused += 1;
      continue;  // RAII closes the connection
    }
    auto client = std::make_unique<Client>();
    client->socket = std::move(conn);
    int key = next_client_key_++;
    int fd = client->socket.fd();
    client->watch = loop_->AddIoWatch(
        fd, IoCondition::kIn, [this, key](int, IoCondition cond) { return OnClientReady(key, cond); });
    if (client->watch == 0) {
      continue;
    }
    clients_[key] = std::move(client);
    stats_.connections += 1;
  }
  return true;
}

bool StreamServer::OnClientReady(int client_key, IoCondition cond) {
  auto it = clients_.find(client_key);
  if (it == clients_.end()) {
    return false;
  }
  Client& client = *it->second;

  if (Has(cond, IoCondition::kErr)) {
    DropClient(client_key);
    return false;
  }

  char buf[65536];
  while (true) {
    IoResult r = client.socket.Read(buf, sizeof(buf));
    if (r.status == IoResult::Status::kOk) {
      stats_.bytes += static_cast<int64_t>(r.bytes);
      ProcessData(client, buf, r.bytes);
      continue;
    }
    if (r.status == IoResult::Status::kWouldBlock) {
      return true;
    }
    // EOF or error: flush any final unterminated line, then drop.
    if (!client.discarding && !client.line_buffer.empty()) {
      HandleLine(client.line_buffer);
      client.line_buffer.clear();
      FlushIngest();
    }
    DropClient(client_key);
    return false;
  }
}

void StreamServer::ProcessData(Client& client, const char* data, size_t len) {
  size_t pos = 0;
  while (pos < len) {
    const char* nl =
        static_cast<const char*>(std::memchr(data + pos, '\n', len - pos));
    if (nl == nullptr) {
      // No newline in the remainder: keep the tail for the next read.
      size_t tail = len - pos;
      if (client.discarding) {
        break;
      }
      if (client.line_buffer.size() + tail > options_.max_line_bytes) {
        stats_.parse_errors += 1;
        client.line_buffer.clear();
        client.discarding = true;  // resynchronize at the next newline
        break;
      }
      client.line_buffer.append(data + pos, tail);
      break;
    }
    size_t line_end = static_cast<size_t>(nl - data);
    if (client.discarding) {
      client.discarding = false;  // the over-long line ends here
    } else if (!client.line_buffer.empty()) {
      // Split line: complete it in the side buffer (the only copied case).
      if (client.line_buffer.size() + (line_end - pos) > options_.max_line_bytes) {
        stats_.parse_errors += 1;
      } else {
        client.line_buffer.append(data + pos, line_end - pos);
        HandleLine(client.line_buffer);
      }
      client.line_buffer.clear();
    } else if (line_end - pos > options_.max_line_bytes) {
      stats_.parse_errors += 1;
    } else {
      // Whole line inside the read buffer: parse in place.
      HandleLine(std::string_view(data + pos, line_end - pos));
    }
    pos = line_end + 1;
  }
  FlushIngest();
}

void StreamServer::FlushIngest() {
  IngestRouter::FlushStats flushed = router_.Flush();
  stats_.dropped_late += flushed.dropped_late;
}

void StreamServer::HandleLine(std::string_view line) {
  router_.AppendTupleLine(line, &stats_.tuples, &stats_.parse_errors);
}

void StreamServer::DropClient(int client_key) {
  auto it = clients_.find(client_key);
  if (it == clients_.end()) {
    return;
  }
  if (it->second->watch != 0) {
    loop_->Remove(it->second->watch);
  }
  clients_.erase(it);
  stats_.disconnections += 1;
}

}  // namespace gscope
