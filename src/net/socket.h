// RAII non-blocking TCP sockets for the gscope client/server library.
//
// Section 4.4: the distributed library is single-threaded and I/O driven, so
// every socket here is non-blocking and meant to be driven by MainLoop fd
// watches.  Only loopback/IPv4 addressing is needed for the reproduction.
#ifndef GSCOPE_NET_SOCKET_H_
#define GSCOPE_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace gscope {

// Result of a non-blocking read/write.
struct IoResult {
  enum class Status { kOk, kWouldBlock, kEof, kError };
  Status status = Status::kError;
  size_t bytes = 0;

  bool ok() const { return status == Status::kOk; }
};

class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Releases ownership of the fd without closing it.
  int Release();
  void Close();

  // Creates a non-blocking listening socket on 127.0.0.1:`port` (0 picks an
  // ephemeral port, reported through `bound_port`).  Invalid on failure.
  static Socket Listen(uint16_t port, uint16_t* bound_port = nullptr);

  // Starts a non-blocking connect to 127.0.0.1:`port`.  The connection may
  // still be in progress when this returns; wait for writability.
  static Socket Connect(uint16_t port);

  // Accepts one pending connection (non-blocking).  Invalid if none pending.
  Socket Accept();

  IoResult Read(void* buf, size_t len);
  IoResult Write(const void* buf, size_t len);

 private:
  int fd_ = -1;
};

}  // namespace gscope

#endif  // GSCOPE_NET_SOCKET_H_
