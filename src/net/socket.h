// RAII non-blocking TCP and UDP sockets for the gscope client/server library.
//
// Section 4.4: the distributed library is single-threaded and I/O driven, so
// every socket here is non-blocking and meant to be driven by MainLoop fd
// watches.  Only loopback/IPv4 addressing is needed for the reproduction.
// The datagram variants serve the lossy high-rate telemetry path, where TCP
// backpressure on the producer is unwanted.
#ifndef GSCOPE_NET_SOCKET_H_
#define GSCOPE_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace gscope {

// Result of a non-blocking read/write.
struct IoResult {
  enum class Status { kOk, kWouldBlock, kEof, kError };
  Status status = Status::kError;
  size_t bytes = 0;

  bool ok() const { return status == Status::kOk; }
};

class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Releases ownership of the fd without closing it.
  int Release();
  void Close();

  // Creates a non-blocking listening socket on 127.0.0.1:`port` (0 picks an
  // ephemeral port, reported through `bound_port`).  Invalid on failure.
  // With `reuse_port`, SO_REUSEPORT is set before bind: N loops may each
  // bind their own listener to one port and the kernel load-balances
  // accepts across them (the sharded server's listener-per-loop mode).
  static Socket Listen(uint16_t port, uint16_t* bound_port = nullptr,
                       bool reuse_port = false);

  // Whether this platform honours SO_REUSEPORT (probed once on a throwaway
  // socket and cached).  Callers that want listener-per-loop sharding probe
  // first and fall back to single-acceptor hand-off when unavailable.
  static bool ReusePortSupported();

  // Starts a non-blocking connect to 127.0.0.1:`port`.  The connection may
  // still be in progress when this returns; wait for writability, then call
  // PendingError() to learn whether the connect succeeded.
  static Socket Connect(uint16_t port);

  // Marks the socket SO_REUSEPORT (before bind).  False when the option is
  // unsupported or cannot be set; never fatal - callers degrade to
  // single-acceptor hand-off.
  bool SetReusePort();

  // Shrinks/grows the kernel send/receive buffer (SO_SNDBUF / SO_RCVBUF).
  // Small values move backpressure out of kernel buffering and into the
  // application's bounded backlog, where drop policies can see it (the
  // kernel clamps and roughly doubles the requested value).  False if the
  // option could not be set.
  bool SetSendBufferBytes(int bytes);
  bool SetRecvBufferBytes(int bytes);

  // Drains and returns the socket's pending error (SO_ERROR): 0 when the
  // socket is healthy (e.g. a non-blocking connect completed), the errno
  // value otherwise (ECONNREFUSED, ETIMEDOUT, ...).  Returns EBADF on an
  // invalid socket.
  int PendingError() const;

  // Accepts one pending connection (non-blocking).  Invalid if none pending.
  Socket Accept();

  IoResult Read(void* buf, size_t len);
  IoResult Write(const void* buf, size_t len);

  // -- Datagram (UDP) --------------------------------------------------------

  // Non-blocking datagram socket bound to 127.0.0.1:`port` (0 picks an
  // ephemeral port).  Enables the kernel receive-drop counter (SO_RXQ_OVFL)
  // where available so the server can report datagrams lost to queue
  // overflow.  With `reuse_port`, SO_REUSEPORT is set before bind so N
  // loops can share one UDP port (the kernel hashes senders across them).
  static Socket BindDatagram(uint16_t port, uint16_t* bound_port = nullptr,
                             bool reuse_port = false);

  // Non-blocking datagram socket connected to 127.0.0.1:`port`; Write()
  // then sends one datagram per call.
  static Socket ConnectDatagram(uint16_t port);

  struct DatagramResult {
    IoResult::Status status = IoResult::Status::kError;
    size_t bytes = 0;
    // The datagram was longer than `len` and its tail was discarded.
    bool truncated = false;
    // Cumulative count of datagrams the kernel dropped on this socket's
    // receive queue (SO_RXQ_OVFL); only meaningful when has_kernel_drops is
    // set.  The counter is per-socket: it restarts at zero for every fresh
    // Bind, and wraps at 2^32.
    uint32_t kernel_drops = 0;
    // The SO_RXQ_OVFL control message was present on this receive.  Callers
    // must not treat an absent counter as the value zero: conflating the two
    // lets a later genuine reading double-count or march a delta backwards.
    bool has_kernel_drops = false;
  };
  // Receives one datagram (non-blocking).  Unlike Read, detects truncation
  // and reports the kernel drop counter.
  DatagramResult ReadDatagram(void* buf, size_t len);

 private:
  int fd_ = -1;
};

}  // namespace gscope

#endif  // GSCOPE_NET_SOCKET_H_
