#include "net/fault_injector.h"

#include <atomic>

#include <errno.h>
#include <sys/socket.h>
#include <time.h>

namespace gscope {

namespace {
// The installed injector.  Relaxed is enough: installation happens-before
// the faulted calls via the thread start / loop wakeup that begins a test
// run, and a stale nullptr read merely skips injection for one call.
std::atomic<FaultInjector*> g_installed{nullptr};
}  // namespace

FaultInjector::~FaultInjector() {
  // Uninstall if the dying injector is still the installed one, so a test
  // that forgets the scoped guard cannot leave a dangling global.
  FaultInjector* self = this;
  g_installed.compare_exchange_strong(self, nullptr,
                                      std::memory_order_relaxed);
}

void FaultInjector::AddRule(const FaultRule& rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(rule);
  if (rules_.back().clamp == 0) rules_.back().clamp = 1;
}

void FaultInjector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
}

FaultRule FaultInjector::ShortReads(size_t max_bytes, int count) {
  FaultRule r;
  r.op = FaultOp::kRead;
  r.action = FaultRule::Action::kShortRead;
  r.clamp = max_bytes;
  r.count = count;
  return r;
}

FaultRule FaultInjector::PartialWrites(size_t max_bytes, int count) {
  FaultRule r;
  r.op = FaultOp::kWrite;
  r.action = FaultRule::Action::kPartialWrite;
  r.clamp = max_bytes;
  r.count = count;
  return r;
}

FaultRule FaultInjector::ErrnoStorm(FaultOp op, int err, int count,
                                    int skip) {
  FaultRule r;
  r.op = op;
  r.action = FaultRule::Action::kErrno;
  r.err = err;
  r.count = count;
  r.skip = skip;
  return r;
}

FaultRule FaultInjector::KillConnection(FaultOp op, int skip) {
  FaultRule r;
  r.op = op;
  r.action = FaultRule::Action::kKill;
  r.skip = skip;
  r.count = 1;
  return r;
}

FaultRule FaultInjector::Latency(FaultOp op, Nanos delay_ns, int count) {
  FaultRule r;
  r.op = op;
  r.action = FaultRule::Action::kDelay;
  r.delay_ns = delay_ns;
  r.count = count;
  return r;
}

FaultDecision FaultInjector::Intercept(FaultOp op, int fd, size_t len) {
  FaultDecision d;
  std::lock_guard<std::mutex> lock(mu_);
  stats_.intercepted_calls++;
  for (FaultRule& rule : rules_) {
    if (rule.op != op) continue;
    if (rule.fd != -1 && rule.fd != fd) continue;
    if (rule.count == 0) continue;  // exhausted
    if (rule.skip > 0) {
      rule.skip--;
      continue;
    }
    if (rule.probability < 1.0) {
      std::uniform_real_distribution<double> coin(0.0, 1.0);
      if (coin(rng_) >= rule.probability) continue;
    }
    if (rule.count > 0) rule.count--;
    stats_.faults_injected++;
    switch (rule.action) {
      case FaultRule::Action::kErrno:
        stats_.errnos_injected++;
        d.fail = true;
        d.err = rule.err;
        return d;
      case FaultRule::Action::kShortRead:
        stats_.short_reads++;
        if (len > rule.clamp) d.max_len = rule.clamp;
        return d;
      case FaultRule::Action::kPartialWrite:
        stats_.partial_writes++;
        if (len > rule.clamp) d.max_len = rule.clamp;
        return d;
      case FaultRule::Action::kKill:
        stats_.kills++;
        d.kill = true;
        d.fail = true;
        d.err = ECONNRESET;
        return d;
      case FaultRule::Action::kDelay:
        stats_.delays++;
        d.delay_ns = rule.delay_ns;
        return d;
    }
  }
  return d;
}

FaultInjector::Stats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void FaultInjector::Install(FaultInjector* injector) {
  g_installed.store(injector, std::memory_order_relaxed);
}

FaultInjector* FaultInjector::installed() {
  return g_installed.load(std::memory_order_relaxed);
}

bool FaultInjector::Shim(FaultOp op, int fd, size_t* len) {
  FaultInjector* fi = installed();
  if (fi == nullptr) {
    return false;
  }
  FaultDecision d = fi->Intercept(op, fd, len != nullptr ? *len : 0);
  if (d.delay_ns > 0) {
    timespec ts{static_cast<time_t>(d.delay_ns / kNanosPerSecond),
                static_cast<long>(d.delay_ns % kNanosPerSecond)};
    nanosleep(&ts, nullptr);
  }
  if (d.kill && fd >= 0) {
    shutdown(fd, SHUT_RDWR);
  }
  if (d.fail) {
    errno = d.err;
    return true;
  }
  if (len != nullptr && d.max_len < *len) {
    *len = d.max_len > 0 ? d.max_len : 1;
  }
  return false;
}

}  // namespace gscope
