// UDP ingest listener for lossy high-rate telemetry.
//
// The TCP stream server (Section 4.4) gives reliable delivery but couples
// the producer to the display host through backpressure: a stalled scope
// host stalls the instrumented application.  The datagram server trades
// reliability for isolation - producers fire-and-forget tuple lines over
// UDP and the kernel sheds load by dropping datagrams when the display host
// falls behind.  Dropped and malformed input is counted, never blocking.
//
// Wire format: each datagram carries one or more newline-delimited tuple
// lines (`<time_ms> <value> [<name>]`).  Datagrams are self-contained -
// there is no cross-datagram line reassembly, so a trailing line without a
// terminating newline is still parsed (and counted as a short datagram).
//
// Routing and fan-out reuse the same sharded IngestRouter as the stream
// server: each readable burst of datagrams is parsed once into a shared
// block and every display scope receives an O(1) span.
#ifndef GSCOPE_NET_DATAGRAM_SERVER_H_
#define GSCOPE_NET_DATAGRAM_SERVER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/ingest_router.h"
#include "core/scope.h"
#include "net/socket.h"
#include "runtime/event_loop.h"

namespace gscope {

struct DatagramServerOptions {
  // Create a BUFFER signal on the scopes the first time a new name appears.
  bool auto_create_signals = true;
  // Receive buffer: datagrams longer than this are counted as truncated and
  // discarded (UDP cannot resynchronize a cut line).
  size_t max_datagram_bytes = 65536;
  // Datagrams consumed per readable wake-up before control returns to the
  // main loop: a flooding producer must not starve scope ticks (the kernel
  // sheds the excess, which is the UDP contract).
  size_t max_datagrams_per_wakeup = 1024;
  // Fan-out sharding (see IngestRouterOptions).
  size_t fanout_shards = 4;
  int fanout_workers = -1;
};

class DatagramServer {
 public:
  struct Stats {
    int64_t datagrams = 0;
    int64_t bytes = 0;
    int64_t tuples = 0;
    int64_t parse_errors = 0;
    int64_t dropped_late = 0;
    // Datagrams longer than max_datagram_bytes (payload discarded).
    int64_t truncated_datagrams = 0;
    // Datagrams whose final line had no terminating newline (still parsed).
    int64_t short_datagrams = 0;
    // Datagrams the kernel dropped on the receive queue (SO_RXQ_OVFL);
    // cumulative across rebinds, 0 where the platform lacks the counter.
    int64_t kernel_drops = 0;
  };

  // `loop` and `scope` are not owned and must outlive the server.  `scope`
  // may be null; AddScope attaches display targets.
  DatagramServer(MainLoop* loop, Scope* scope, DatagramServerOptions options = {});
  ~DatagramServer();

  DatagramServer(const DatagramServer&) = delete;
  DatagramServer& operator=(const DatagramServer&) = delete;

  bool AddScope(Scope* scope);
  bool RemoveScope(Scope* scope);
  size_t scope_count() const { return router_.scope_count(); }

  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts receiving.
  bool Listen(uint16_t port);
  uint16_t port() const { return port_; }
  void Close();

  const Stats& stats() const { return stats_; }
  const IngestRouter& router() const { return router_; }

 private:
  bool OnReadable();
  void HandleDatagram(const char* data, size_t len);
  void HandleLine(std::string_view line);

  MainLoop* loop_;
  DatagramServerOptions options_;
  IngestRouter router_;

  Socket socket_;
  SourceId watch_ = 0;
  uint16_t port_ = 0;
  std::vector<char> recv_buf_;
  // SO_RXQ_OVFL reports a per-socket cumulative count; the delta against
  // this keeps stats_.kernel_drops monotonic across Close()/Listen().
  uint32_t last_kernel_drop_counter_ = 0;
  Stats stats_;
};

}  // namespace gscope

#endif  // GSCOPE_NET_DATAGRAM_SERVER_H_
