// UDP ingest listener for lossy high-rate telemetry.
//
// The TCP stream server (Section 4.4) gives reliable delivery but couples
// the producer to the display host through backpressure: a stalled scope
// host stalls the instrumented application.  The datagram server trades
// reliability for isolation - producers fire-and-forget tuple lines over
// UDP and the kernel sheds load by dropping datagrams when the display host
// falls behind.  Dropped and malformed input is counted, never blocking.
//
// Wire format: each datagram carries one or more newline-delimited tuple
// lines (`<time_ms> <value> [<name>]`).  Datagrams are self-contained -
// there is no cross-datagram line reassembly, so a trailing line without a
// terminating newline is still parsed (and counted as a short datagram).
//
// Routing and fan-out reuse the same sharded IngestRouter as the stream
// server: each readable burst of datagrams is parsed once into a shared
// block and every display scope receives an O(1) span.
//
// Sharded receive (options.loops > 1): one SO_REUSEPORT socket per per-core
// loop (runtime/loop_pool.h); the kernel spreads datagrams by source
// address, so each producer's stream drains on one loop.  UDP has no
// accepted-connection to hand off, so when the platform lacks SO_REUSEPORT
// the server simply stays single-socket on the primary loop (loops is
// effectively 1; reuse_port_active() reports which).  Stats are relaxed
// per-field atomics; loops = 1 is byte-identical to the pre-sharding
// server.
#ifndef GSCOPE_NET_DATAGRAM_SERVER_H_
#define GSCOPE_NET_DATAGRAM_SERVER_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "core/ingest_router.h"
#include "core/scope.h"
#include "net/socket.h"
#include "runtime/event_loop.h"
#include "runtime/loop_pool.h"
#include "runtime/relaxed_counter.h"

namespace gscope {

struct DatagramServerOptions {
  // Create a BUFFER signal on the scopes the first time a new name appears.
  bool auto_create_signals = true;
  // Receive buffer: datagrams longer than this are counted as truncated and
  // discarded (UDP cannot resynchronize a cut line).
  size_t max_datagram_bytes = 65536;
  // Datagrams consumed per readable wake-up before control returns to the
  // owning loop: a flooding producer must not starve scope ticks (the kernel
  // sheds the excess, which is the UDP contract).
  size_t max_datagrams_per_wakeup = 1024;
  // Fan-out sharding (see IngestRouterOptions).
  size_t fanout_shards = 4;
  int fanout_workers = -1;
  // Receive sharding: per-core loops each owning a SO_REUSEPORT socket
  // (header comment).  Requires kernel support; silently stays single-loop
  // without it.  Clamped to >= 1.
  size_t loops = 1;
};

class DatagramServer {
 public:
  // Server-wide counters; relaxed per-field atomics so every receive loop
  // bumps and any thread reads (runtime/relaxed_counter.h).
  struct Stats {
    RelaxedCounter datagrams;
    RelaxedCounter bytes;
    RelaxedCounter tuples;
    RelaxedCounter parse_errors;
    RelaxedCounter dropped_late;
    // Datagrams longer than max_datagram_bytes (payload discarded).
    RelaxedCounter truncated_datagrams;
    // Datagrams whose final line had no terminating newline (still parsed).
    RelaxedCounter short_datagrams;
    // Datagrams the kernel dropped on the receive queue (SO_RXQ_OVFL);
    // cumulative across rebinds, 0 where the platform lacks the counter.
    RelaxedCounter kernel_drops;
  };

  // `loop` and `scope` are not owned and must outlive the server.  `scope`
  // may be null; AddScope attaches display targets.
  DatagramServer(MainLoop* loop, Scope* scope, DatagramServerOptions options = {});
  ~DatagramServer();

  DatagramServer(const DatagramServer&) = delete;
  DatagramServer& operator=(const DatagramServer&) = delete;

  bool AddScope(Scope* scope);
  bool RemoveScope(Scope* scope);
  size_t scope_count() const { return router_.scope_count(); }

  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts receiving.
  bool Listen(uint16_t port);
  uint16_t port() const { return port_; }
  void Close();

  // Sharding introspection: configured loop count and whether the sharded
  // (reuse-port) receive path actually engaged at Listen().
  size_t loop_count() const { return pool_.size(); }
  bool reuse_port_active() const { return reuse_port_active_; }
  const Stats& stats() const { return stats_; }
  const IngestRouter& router() const { return router_; }

 private:
  // One receive shard: socket, watch and scratch owned by `loop`.  Stable
  // storage (heap-allocated once, never moved) so closures hold raw
  // pointers safely.
  struct Shard {
    MainLoop* loop = nullptr;
    Socket socket;
    SourceId watch = 0;
    std::vector<char> recv_buf;
    // SO_RXQ_OVFL reports a per-socket cumulative count; the delta against
    // this keeps stats_.kernel_drops monotonic across Close()/Listen().
    uint32_t last_kernel_drop_counter = 0;
  };

  bool OnReadable(Shard& shard);
  void HandleDatagram(const char* data, size_t len);
  void HandleLine(std::string_view line);

  MainLoop* loop_;
  DatagramServerOptions options_;
  IngestRouter router_;
  LoopPool pool_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool reuse_port_active_ = false;
  uint16_t port_ = 0;
  Stats stats_;
};

}  // namespace gscope

#endif  // GSCOPE_NET_DATAGRAM_SERVER_H_
