// Gscope stream client (Section 4.4).
//
// "Clients use the gscope client API to connect to a server ... Clients
// asynchronously send BUFFER signal data in tuple format."  The client is
// single-threaded and I/O driven: SendTuple appends to an output buffer that
// drains through a writability watch, so the application never blocks.
#ifndef GSCOPE_NET_STREAM_CLIENT_H_
#define GSCOPE_NET_STREAM_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "core/tuple.h"
#include "net/socket.h"
#include "runtime/event_loop.h"

namespace gscope {

class StreamClient {
 public:
  struct Stats {
    int64_t tuples_sent = 0;
    int64_t bytes_sent = 0;
    int64_t tuples_dropped = 0;  // output buffer overflow
  };

  // `loop` is not owned.  `max_buffer` bounds the unsent byte backlog; when
  // the server is slower than the producer, the newest tuples are dropped
  // (visualization data is disposable, blocking the app is not acceptable).
  explicit StreamClient(MainLoop* loop, size_t max_buffer = 1 << 20);
  ~StreamClient();

  StreamClient(const StreamClient&) = delete;
  StreamClient& operator=(const StreamClient&) = delete;

  // Starts a non-blocking connect to 127.0.0.1:`port`.
  bool Connect(uint16_t port);
  void Close();
  bool connected() const { return socket_.valid(); }

  // Queues one tuple for asynchronous delivery.  Returns false if the
  // client is disconnected or the backlog is full.
  bool SendTuple(const Tuple& tuple);

  // Same without a materialized Tuple: formats directly into the output
  // buffer, so steady-state sends perform no per-tuple allocation.
  bool Send(int64_t time_ms, double value, std::string_view name);

  // Unsent bytes currently queued.
  size_t pending_bytes() const { return out_buffer_.size() - out_offset_; }
  const Stats& stats() const { return stats_; }

 private:
  bool OnWritable();
  void EnsureWriteWatch();

  MainLoop* loop_;
  size_t max_buffer_;
  Socket socket_;
  SourceId write_watch_ = 0;
  std::string out_buffer_;
  size_t out_offset_ = 0;
  Stats stats_;
};

}  // namespace gscope

#endif  // GSCOPE_NET_STREAM_CLIENT_H_
