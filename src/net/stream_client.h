// Gscope stream client (Section 4.4).
//
// "Clients use the gscope client API to connect to a server ... Clients
// asynchronously send BUFFER signal data in tuple format."  The client is
// single-threaded and I/O driven: SendTuple appends one framed tuple line to
// a bounded output backlog (FramedWriter) that drains through a writability
// watch, so the application never blocks.  When the backlog cap would be
// exceeded the newest tuple is rolled back whole - the server can never
// observe a truncated line (see docs/protocol.md, "Backlog and drop
// semantics").
//
// Connect() is non-blocking: the TCP handshake completes (or fails) later,
// signalled by the first writability event on the socket.  The client reads
// SO_ERROR there, so a refused or failed connect is surfaced through
// state()/last_error() and the optional connect callback instead of being
// silently swallowed.  Tuples sent while the connect is in flight are
// queued; they count as sent only once the connection is established (and as
// dropped if it fails).
#ifndef GSCOPE_NET_STREAM_CLIENT_H_
#define GSCOPE_NET_STREAM_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string_view>

#include "core/tuple.h"
#include "net/socket.h"
#include "runtime/event_loop.h"
#include "runtime/framed_writer.h"

namespace gscope {

enum class ConnectState : uint8_t {
  kDisconnected,  // never connected, or an established connection ended
  kConnecting,    // non-blocking connect in flight
  kConnected,     // handshake completed (SO_ERROR was 0)
  kFailed,        // connect failed (last_error() holds the errno)
};

class StreamClient {
 public:
  struct Stats {
    // Tuples committed to an ESTABLISHED connection's backlog.  Tuples
    // queued while a connect is in flight count only once it completes.
    int64_t tuples_sent = 0;
    int64_t bytes_sent = 0;
    int64_t tuples_dropped = 0;  // backlog overflow, pre-connect failure
    int64_t connect_failures = 0;
  };

  // Invoked once per Connect() when the handshake resolves: ok = true with
  // error 0, or ok = false with the SO_ERROR errno value.
  using ConnectFn = std::function<void(bool ok, int error)>;

  // `loop` is not owned.  `max_buffer` bounds the unsent byte backlog; when
  // the server is slower than the producer, the newest tuples are dropped
  // (visualization data is disposable, blocking the app is not acceptable).
  explicit StreamClient(MainLoop* loop, size_t max_buffer = 1 << 20);
  ~StreamClient();

  StreamClient(const StreamClient&) = delete;
  StreamClient& operator=(const StreamClient&) = delete;

  // Starts a non-blocking connect to 127.0.0.1:`port`.  True means the
  // attempt is in flight (not that the connection is established); the
  // outcome arrives through the connect callback / state().
  bool Connect(uint16_t port);
  void Close();

  void SetConnectCallback(ConnectFn fn) { on_connect_ = std::move(fn); }

  ConnectState state() const { return state_; }
  // True only once the handshake has actually completed - never while the
  // connect is still in flight or after it failed.
  bool connected() const { return state_ == ConnectState::kConnected; }
  // errno of the last failed connect (0 if none failed yet).
  int last_error() const { return last_error_; }

  // Queues one tuple for asynchronous delivery.  Returns false if the
  // client is disconnected/failed or the backlog is full.
  bool SendTuple(const Tuple& tuple);

  // Same without a materialized Tuple: formats directly into the output
  // buffer, so steady-state sends perform no per-tuple allocation.
  bool Send(int64_t time_ms, double value, std::string_view name);

  // Unsent bytes currently queued.
  size_t pending_bytes() const { return writer_.pending_bytes(); }
  const Stats& stats() const {
    stats_.bytes_sent = writer_.stats().bytes_written;  // drains happen async
    return stats_;
  }

 private:
  bool OnConnectReady(IoCondition cond);
  void ResolveConnect(int error);

  MainLoop* loop_;
  Socket socket_;
  FramedWriter writer_;
  SourceId connect_watch_ = 0;
  ConnectState state_ = ConnectState::kDisconnected;
  int last_error_ = 0;
  // Tuples committed while state_ == kConnecting; folded into tuples_sent
  // or tuples_dropped when the handshake resolves.
  int64_t preconnect_tuples_ = 0;
  ConnectFn on_connect_;
  mutable Stats stats_;
};

}  // namespace gscope

#endif  // GSCOPE_NET_STREAM_CLIENT_H_
