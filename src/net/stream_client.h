// Gscope stream client (Section 4.4).
//
// "Clients use the gscope client API to connect to a server ... Clients
// asynchronously send BUFFER signal data in tuple format."  The client is
// single-threaded and I/O driven: SendTuple appends one framed tuple line to
// a bounded output backlog (FramedWriter) that drains through a writability
// watch, so the application never blocks.  When the backlog cap would be
// exceeded the newest tuple is rolled back whole - the server can never
// observe a truncated line (see docs/protocol.md, "Backlog and drop
// semantics").
//
// Connect() is non-blocking: the TCP handshake completes (or fails) later,
// signalled by the first writability event on the socket.  The client reads
// SO_ERROR there, so a refused or failed connect is surfaced through
// state()/last_error() and the optional connect callback instead of being
// silently swallowed.  Tuples sent while the connect is in flight are
// queued; they count as sent only once the connection is established (and as
// dropped if it fails).
#ifndef GSCOPE_NET_STREAM_CLIENT_H_
#define GSCOPE_NET_STREAM_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <string_view>

#include "core/tuple.h"
#include "net/frame_codec.h"
#include "net/line_framer.h"
#include "net/socket.h"
#include "runtime/event_loop.h"
#include "runtime/framed_writer.h"

namespace gscope {

enum class ConnectState : uint8_t {
  kDisconnected,  // never connected, or an established connection ended
  kConnecting,    // non-blocking connect in flight
  kConnected,     // handshake completed (SO_ERROR was 0)
  kFailed,        // connect failed for good (last_error() holds the errno)
  kBackoff,       // connection lost/refused; a reconnect timer is armed
};

// Automatic reconnect with capped exponential backoff.  Disabled by default:
// a failed/lost connection then resolves to kFailed/kDisconnected exactly as
// before.  When enabled, every lost or refused connection arms a one-shot
// retry timer (state kBackoff) whose delay doubles up to the cap, plus a
// deterministic jitter drawn from `seed` - concurrent clients spread out,
// yet a fixed seed replays the exact schedule in tests.
struct ReconnectOptions {
  bool enabled = false;
  int64_t initial_backoff_ms = 10;
  int64_t max_backoff_ms = 1000;
  double multiplier = 2.0;
  double jitter_frac = 0.1;  // each delay stretched by up to this fraction
  uint32_t seed = 1;
  // Consecutive failed attempts before giving up (state kFailed);
  // 0 = retry forever.  Resets on every successful establishment.
  int max_attempts = 0;
};

class StreamClient {
 public:
  struct Options {
    // Bounds the unsent byte backlog.
    size_t max_buffer = 1 << 20;
    // What happens when a tuple would push the backlog past the cap: drop
    // the newest (default - visualization data is disposable, blocking the
    // app is not acceptable), evict the oldest whole frames to keep the
    // newest, or wait for drainage up to block_deadline_ms per send.
    OverflowPolicy overflow_policy = OverflowPolicy::kDropNewest;
    int64_t block_deadline_ms = 5;  // kBlockWithDeadline budget per commit
    // SO_SNDBUF for the connection, 0 = kernel default.  A small value
    // moves backpressure from kernel buffering into this client's backlog,
    // where the overflow policy (and its counters) can see it.
    int sndbuf_bytes = 0;
    // Self-healing knobs: automatic reconnect, and adaptive overflow
    // handling for the output backlog (see FramedWriter::AdaptiveOptions).
    ReconnectOptions reconnect;
    FramedWriter::AdaptiveOptions adaptive;
    // Upload format.  kBinary sends HELLO BIN 1 after every establishment
    // and switches to length-prefixed binary frames once the server
    // acknowledges; until then (and whenever the server declines) tuples
    // travel as text, so the option is safe against any server.
    WireFormat wire_format = WireFormat::kText;
    // Binary only: samples staged per frame before it is sealed into the
    // output backlog.  Larger frames amortize the header/dict bytes;
    // anything staged is flushed at the end of the loop iteration anyway,
    // so latency stays bounded.
    size_t frame_samples = 128;
  };

  struct Stats {
    // Tuples committed to an ESTABLISHED connection's backlog.  Tuples
    // queued while a connect is in flight count only once it completes.
    int64_t tuples_sent = 0;
    int64_t bytes_sent = 0;
    int64_t tuples_dropped = 0;  // backlog overflow, pre-connect failure
    // Committed (counted sent) but later discarded: evicted by kDropOldest,
    // or abandoned unsent when the connection died / was closed.  Delivered
    // tuples = tuples_sent - tuples_evicted - tuples_abandoned (minus any
    // bytes the kernel had in flight when a connection was torn down).
    int64_t tuples_evicted = 0;
    int64_t tuples_abandoned = 0;
    int64_t bytes_dropped = 0;       // bytes of dropped+evicted+abandoned tuples
    int64_t block_time_ns = 0;       // kBlockWithDeadline waits
    int64_t backlog_high_water = 0;  // max unsent backlog bytes observed
    int64_t connect_failures = 0;
    int64_t connect_attempts = 0;    // every TCP connect started (incl. retries)
    int64_t reconnects = 0;          // successful re-establishments after the first
    int64_t policy_switches = 0;     // adaptive overflow-policy transitions
    int64_t bytes_discarded = 0;     // inbound bytes read and ignored (the
                                     // read watch only exists to detect EOF)
  };

  // Invoked each time a connect attempt resolves (with reconnect enabled
  // that can be many times per Connect() call): ok = true with error 0, or
  // ok = false with the SO_ERROR errno value.
  using ConnectFn = std::function<void(bool ok, int error)>;
  // Invoked on every state transition, including those inside reconnect
  // cycles.  Tests observe kConnected/kBackoff edges here instead of
  // sleeping.
  using StateFn = std::function<void(ConnectState state)>;

  // `loop` is not owned.
  StreamClient(MainLoop* loop, Options options);
  // Backwards-compatible shape: default options with `max_buffer`.
  explicit StreamClient(MainLoop* loop, size_t max_buffer = 1 << 20)
      : StreamClient(loop, Options{.max_buffer = max_buffer}) {}
  ~StreamClient();

  StreamClient(const StreamClient&) = delete;
  StreamClient& operator=(const StreamClient&) = delete;

  // Starts a non-blocking connect to 127.0.0.1:`port`.  True means the
  // attempt is in flight (not that the connection is established); the
  // outcome arrives through the connect callback / state().
  bool Connect(uint16_t port);
  void Close();

  void SetConnectCallback(ConnectFn fn) { on_connect_ = std::move(fn); }
  void SetStateCallback(StateFn fn) { on_state_ = std::move(fn); }

  ConnectState state() const { return state_; }
  // The delay the most recent backoff armed (ms); for tests and diagnostics.
  int64_t last_backoff_ms() const { return last_backoff_ms_; }
  // True only once the handshake has actually completed - never while the
  // connect is still in flight or after it failed.
  bool connected() const { return state_ == ConnectState::kConnected; }
  // errno of the last failed connect (0 if none failed yet).
  int last_error() const { return last_error_; }

  // Queues one tuple for asynchronous delivery.  Returns false if the
  // client is disconnected/failed or the backlog is full.
  bool SendTuple(const Tuple& tuple);

  // Same without a materialized Tuple: formats directly into the output
  // buffer, so steady-state sends perform no per-tuple allocation.
  bool Send(int64_t time_ms, double value, std::string_view name);

  // Switches the overflow policy mid-stream (between sends).
  void SetQueuePolicy(OverflowPolicy policy, int64_t block_deadline_ms = 5) {
    writer_.SetPolicy(policy, MillisToNanos(block_deadline_ms));
  }
  OverflowPolicy queue_policy() const { return writer_.policy(); }

  // Unsent bytes currently queued (binary: staged-but-unsealed samples
  // included, so "drain until empty" loops cover the open frame too).
  size_t pending_bytes() const { return writer_.pending_bytes() + encoder_.staged_bytes(); }
  // True once HELLO BIN was acknowledged on the current connection.
  bool wire_binary() const { return wire_ == WireState::kBinary; }
  const Stats& stats() const {
    // Writer-side counters are folded in lazily: drains happen async.  The
    // units_* mirrors keep the mapping tuple-exact when binary frames carry
    // many tuples each (they equal the frame counters for text).
    const FramedWriter::Stats& w = writer_.stats();
    stats_.bytes_sent = w.bytes_written;
    stats_.tuples_evicted = w.units_evicted;
    // Pre-connect frames discarded by a failed/aborted handshake are
    // already in tuples_dropped; they never counted as sent, so they are
    // backed out of the abandoned mapping.  (Binary frames commit only on
    // an ESTABLISHED connection, so pre-connect discards are all weight-1
    // text frames and the subtraction stays unit-exact.)
    stats_.tuples_abandoned = w.units_abandoned - preconnect_discards_;
    stats_.bytes_dropped = w.bytes_dropped;
    stats_.block_time_ns = w.block_time_ns;
    stats_.backlog_high_water = static_cast<int64_t>(w.high_water_bytes);
    stats_.policy_switches = w.policy_switches;
    return stats_;
  }

 private:
  // Upload-side wire negotiation state (Options::wire_format == kBinary).
  enum class WireState : uint8_t {
    kTextOnly,   // text for the connection's lifetime (default, or declined)
    kHelloSent,  // HELLO BIN 1 committed; replies parsed for the verdict
    kBinary,     // acknowledged: sends stage into binary frames
  };

  bool StartConnect();
  bool OnConnectReady(IoCondition cond);
  void ResolveConnect(int error);
  bool OnSocketReadable();
  bool SendBinary(int64_t time_ms, double value, std::string_view name);
  // Seals the staged samples into one wire frame in the output backlog.
  bool FlushWire();
  void ScheduleWireFlush();
  // Connection death/teardown: staged-but-unsealed samples are lost; they
  // never counted as sent, so they fold into tuples_dropped.
  void DropStagedWire();
  // A previously-established connection died (read EOF/error or a hard
  // write error).  Enters backoff or settles in kDisconnected.
  void HandleConnectionDeath();
  // A connect attempt failed.  Arms the backoff timer when retries remain,
  // else settles in kFailed.  Returns true if a retry was armed.
  bool FailAttempt(int error);
  void EnterBackoff();
  void SetState(ConnectState state);

  MainLoop* loop_;
  Options options_;
  Socket socket_;
  FramedWriter writer_;
  SourceId connect_watch_ = 0;
  SourceId read_watch_ = 0;
  SourceId retry_timer_ = 0;
  ConnectState state_ = ConnectState::kDisconnected;
  int last_error_ = 0;
  uint16_t port_ = 0;
  int64_t cur_backoff_ms_ = 0;
  int64_t last_backoff_ms_ = 0;
  int failed_attempts_ = 0;    // consecutive, since the last establishment
  int64_t establishments_ = 0;
  std::mt19937 jitter_rng_;
  // Tuples committed while state_ == kConnecting; folded into tuples_sent
  // or tuples_dropped when the handshake resolves.
  int64_t preconnect_tuples_ = 0;
  // Frames the writer counted abandoned that were pre-connect discards
  // (already accounted as tuples_dropped); subtracted in stats().
  int64_t preconnect_discards_ = 0;
  ConnectFn on_connect_;
  StateFn on_state_;
  mutable Stats stats_;
  // Binary wire state.
  WireState wire_ = WireState::kTextOnly;
  wire::WireEncoder encoder_;
  LineFramer hello_rx_{256};     // parses replies while kHelloSent
  int64_t hello_rx_overlong_ = 0;
  bool wire_flush_pending_ = false;
  // Liveness token for the deferred flush closure (declared LAST: reset
  // first in destruction order, so a queued flush never touches a dead
  // client).
  std::shared_ptr<StreamClient> self_alias_{this, [](StreamClient*) {}};
};

}  // namespace gscope

#endif  // GSCOPE_NET_STREAM_CLIENT_H_
