// Gscope stream server (Section 4.4).
//
// "Clients asynchronously send BUFFER signal data in tuple format to the
// server.  The server receives data from one or more clients asynchronously
// and buffers the data.  It then displays these BUFFER signals to one or
// more scopes with a user-specified delay.  Data arriving at the server
// after this delay is not buffered but dropped immediately."
//
// Single-threaded and I/O driven: a listen watch accepts clients, per-client
// watches parse newline-delimited tuples and push them into the target
// scope's sample buffer (which applies the delay/late-drop policy).
#ifndef GSCOPE_NET_STREAM_SERVER_H_
#define GSCOPE_NET_STREAM_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/scope.h"
#include "net/socket.h"
#include "runtime/event_loop.h"

namespace gscope {

struct StreamServerOptions {
  // Create a BUFFER signal on the scope the first time a new tuple name
  // appears (remote signals are not known in advance).
  bool auto_create_signals = true;
  // Cap on concurrent clients; further connections are refused.
  size_t max_clients = 32;
};

class StreamServer {
 public:
  struct Stats {
    int64_t connections = 0;
    int64_t disconnections = 0;
    int64_t refused = 0;
    int64_t tuples = 0;
    int64_t parse_errors = 0;
    int64_t dropped_late = 0;
    int64_t bytes = 0;
  };

  // `loop` and `scope` are not owned and must outlive the server.  `scope`
  // is the first display target; AddScope attaches more ("displays these
  // BUFFER signals to one or more scopes").
  StreamServer(MainLoop* loop, Scope* scope, StreamServerOptions options = {});
  ~StreamServer();

  // Fans incoming tuples out to an additional scope.  Returns false for
  // null/duplicate scopes.  Scopes must outlive the server.
  bool AddScope(Scope* scope);
  bool RemoveScope(Scope* scope);
  size_t scope_count() const { return scopes_.size(); }

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts accepting.
  bool Listen(uint16_t port);
  uint16_t port() const { return port_; }
  void Close();

  size_t client_count() const { return clients_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  struct Client {
    Socket socket;
    SourceId watch = 0;
    std::string line_buffer;
  };

  bool OnAcceptReady();
  bool OnClientReady(int client_key, IoCondition cond);
  void ProcessData(Client& client, const char* data, size_t len);
  void HandleLine(const std::string& line);
  void DropClient(int client_key);

  MainLoop* loop_;
  std::vector<Scope*> scopes_;  // display targets; scopes_[0] is the primary
  StreamServerOptions options_;

  Socket listener_;
  SourceId accept_watch_ = 0;
  uint16_t port_ = 0;

  std::map<int, std::unique_ptr<Client>> clients_;
  int next_client_key_ = 1;
  Stats stats_;
};

}  // namespace gscope

#endif  // GSCOPE_NET_STREAM_SERVER_H_
