// Gscope stream server (Section 4.4) with the remote scope control channel.
//
// "Clients asynchronously send BUFFER signal data in tuple format to the
// server.  The server receives data from one or more clients asynchronously
// and buffers the data.  It then displays these BUFFER signals to one or
// more scopes with a user-specified delay.  Data arriving at the server
// after this delay is not buffered but dropped immediately."
//
// Wire protocol (tuple lines AND the control verbs): docs/protocol.md.
//
// I/O driven: a listen watch accepts clients, per-client watches parse
// newline-delimited lines and push tuples into the display scopes' sample
// buffers (which apply the delay/late-drop policy).  Parsing and routing
// stay on the loop thread; with the default fanout_workers = -1 the router
// may spawn up to fanout_shards-1 persistent fan-out worker threads on a
// multi-core host (none on a single core) — set fanout_workers = 0 for a
// strictly single-threaded server.
//
// Control channel: a client line starting with a letter is a control verb
// (SUB / UNSUB / DELAY / LIST / STATS / PING / TIME).  The first recognized
// verb turns the
// connection into a *remote scope session*: the server creates a dedicated
// Scope, registers it with the IngestRouter under the session's
// SignalFilter — so the route table excludes non-subscribed signals at
// build time, never per sample — and streams every sample routed to that
// scope back down the same connection in tuple format, through a bounded
// FramedWriter (whole tuples are dropped on backlog overflow, never partial
// lines).  Display targets thus attach over the network, with their own
// glob subscriptions and late-drop delay, without any process-local
// AddScope call.
//
// Ingest fast path: complete lines are framed with memchr and parsed in
// place from the read buffer (no copy except for lines split across reads).
// Routing and fan-out go through a shared IngestRouter: each read chunk is
// parsed once into a shared block and every scope receives an O(1) span, so
// adding display targets does not multiply per-tuple work (see
// core/ingest_bus.h).
#ifndef GSCOPE_NET_STREAM_SERVER_H_
#define GSCOPE_NET_STREAM_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include <vector>

#include "core/ingest_router.h"
#include "core/scope.h"
#include "core/tuple.h"
#include "core/signal_filter.h"
#include "net/frame_codec.h"
#include "net/line_framer.h"
#include "net/socket.h"
#include "runtime/event_loop.h"
#include "runtime/framed_writer.h"

namespace gscope {

struct StreamServerOptions {
  // Create a BUFFER signal on the scope the first time a new tuple name
  // appears (remote signals are not known in advance).
  bool auto_create_signals = true;
  // Cap on concurrent clients; further connections are refused.
  size_t max_clients = 32;
  // Longest accepted line.  A client that exceeds it (e.g. streams garbage
  // with no newlines) has the line counted as one parse error and discarded;
  // framing resynchronizes at the next newline.  A line of exactly this many
  // bytes (newline excluded) parses, however it is split across reads.
  size_t max_line_bytes = 4096;
  // Fan-out sharding (see IngestRouterOptions): shards per flush and worker
  // threads (-1 = auto: 0 on a single-core host).
  size_t fanout_shards = 4;
  int fanout_workers = -1;
  // Control channel (docs/protocol.md).  Off = every line is a tuple line,
  // the pre-control behaviour.
  bool enable_control = true;
  // Per-session egress backlog cap; overload discards whole tuples only,
  // never partial lines.  The victim is chosen by control_overflow_policy:
  // drop-newest (counted in echo_dropped, the default), or drop-oldest
  // (evict from the backlog head, counted in echo_evicted, so a stalled
  // viewer resumes at the newest data).  kBlockWithDeadline is accepted but
  // blocks the server loop up to control_block_deadline_ms per frame - only
  // sensible for single-viewer embeddings.
  size_t control_max_buffer = 1 << 20;
  OverflowPolicy control_overflow_policy = OverflowPolicy::kDropNewest;
  int64_t control_block_deadline_ms = 0;
  // SO_SNDBUF for a session's egress socket, 0 = kernel default.  Small
  // values surface a slow subscriber in the session writer's backlog - where
  // the overflow policy and the degradation sweep can see it - instead of in
  // kernel buffering.
  int control_sndbuf_bytes = 0;
  // SO_RCVBUF applied to every accepted connection, 0 = kernel default.  A
  // small value makes a deliberately slow/paused server exert backpressure
  // on producers quickly (stress harnesses) instead of hiding behind kernel
  // buffering.
  int client_rcvbuf_bytes = 0;
  // Polling period of the per-session scopes: the granularity at which
  // matched tuples are drained and echoed to subscribers.
  int64_t control_poll_period_ms = 10;
  // Geometry of the per-session scopes (they render like any other scope
  // should the operator want a server-side view of a session).
  int control_scope_width = 128;
  int control_scope_height = 64;
  // Liveness: drop a client that has sent nothing (tuples, verbs or PINGs)
  // for this long.  0 = never; the pre-robustness behaviour.  Clients that
  // enable their own ping_interval_ms stay alive through idle periods.
  int64_t idle_timeout_ms = 0;
  // Graceful degradation: when a session's egress backlog stays pinned (at
  // or above half the cap, or losing frames) for this long, its echo tap is
  // downgraded to TapMode::kCoalesced - the subscriber keeps seeing the
  // freshest value of every signal instead of being evicted - and a
  // "NOTICE DEGRADE coalesced" reply is sent.  Once the backlog drains calm
  // for the same window the per-sample tap is restored ("NOTICE RESTORE
  // every-sample").  0 = never degrade.
  int64_t degrade_stalled_ms = 0;
};

class StreamServer {
 public:
  struct Stats {
    int64_t connections = 0;
    int64_t disconnections = 0;
    int64_t refused = 0;
    int64_t tuples = 0;
    int64_t parse_errors = 0;
    int64_t dropped_late = 0;
    int64_t bytes = 0;
    // Control channel.
    int64_t control_commands = 0;  // recognized verbs, accepted or rejected
    // Rejected control interactions: recognized verbs that failed
    // (malformed arguments - counted even before a session exists, when no
    // ERR reply can be carried - or semantic failures like a duplicate
    // pattern) plus unknown verbs on an existing session.  Unknown verbs
    // without a session count only as parse_errors, like any garbage line.
    int64_t control_errors = 0;
    int64_t sessions_opened = 0;   // connections that became scope sessions
    int64_t tuples_echoed = 0;     // tuples streamed back to subscribers
    int64_t echo_dropped = 0;      // egress overflow: newest frame dropped
    int64_t echo_evicted = 0;      // egress overflow: oldest frames evicted
    // Liveness and degradation (all 0 unless the matching option is on).
    int64_t pings_received = 0;      // PING verbs answered with PONG
    int64_t time_requests = 0;       // TIME verbs answered with OK TIME
    int64_t taps_downgraded = 0;     // echo taps switched to kCoalesced
    int64_t taps_restored = 0;       // echo taps switched back to kEverySample
    int64_t clients_idle_dropped = 0;  // clients dropped by idle_timeout_ms
    // Adaptive overflow-policy transitions across session writers (live sum
    // plus sessions already retired; see DropClient).
    int64_t policy_switches = 0;
    // Binary wire protocol v2 (docs/protocol.md "Binary wire protocol").
    int64_t frames_rx = 0;          // binary frames accepted (CRC-verified)
    int64_t frames_crc_errors = 0;  // loss-of-sync events (bad CRC/header/torn)
    int64_t dict_entries = 0;       // dictionary bindings installed/changed
  };

  // Observes every successfully parsed ingest tuple line, before routing and
  // late-drop.  The view borrows the read buffer: copy what must outlive the
  // call.  For harnesses/diagnostics; parsing is repeated for the tap, so
  // leave it unset on hot production paths.
  using IngestTapFn = std::function<void(const TupleView& tuple)>;
  void SetIngestTap(IngestTapFn fn) { ingest_tap_ = std::move(fn); }

  // `loop` and `scope` are not owned and must outlive the server.  `scope`
  // is the first display target; AddScope attaches more ("displays these
  // BUFFER signals to one or more scopes").  `scope` may be null for a
  // control-only server whose display targets all attach over the wire.
  StreamServer(MainLoop* loop, Scope* scope, StreamServerOptions options = {});
  ~StreamServer();

  // Fans incoming tuples out to an additional scope.  O(1); returns false
  // for null/duplicate scopes.  Scopes must outlive the server.
  bool AddScope(Scope* scope);
  bool RemoveScope(Scope* scope);
  size_t scope_count() const { return router_.scope_count(); }

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts accepting.
  bool Listen(uint16_t port);
  uint16_t port() const { return port_; }
  void Close();

  size_t client_count() const { return clients_.size(); }
  // Connected clients currently holding a remote scope session.
  size_t control_session_count() const;
  const Stats& stats() const { return stats_; }
  const IngestRouter& router() const { return router_; }

 private:
  // One remote scope session: the server-side half of a control connection.
  // The egress FramedWriter lives on the Client (every connection can carry
  // replies - e.g. the HELLO negotiation - before it becomes a session).
  struct ControlSession {
    SignalFilter filter;          // registered with the router; epoch-coupled
    std::unique_ptr<Scope> scope; // the session's display target
    // Degradation sweep state (loop clock; see Sweep()).
    TapMode tap_mode = TapMode::kEverySample;
    Nanos stalled_since_ns = -1;  // first sweep that saw the backlog pinned
    Nanos calm_since_ns = -1;     // first sweep that saw it calm again
    int64_t last_loss_frames = 0; // writer drops+evictions at the last sweep
  };

  // Inbound wire format of one connection (docs/protocol.md).  Text is the
  // default forever; HELLO BIN upgrades one way.  kBinaryPending covers the
  // window between "OK HELLO" and the client's first binary frame: text
  // lines still parse, and the first frame magic at a line boundary flips
  // the connection to kBinary.
  enum class WireMode : uint8_t { kText, kBinaryPending, kBinary };

  // One dictionary binding of a binary connection: id -> interned name and
  // (when resolvable) the server-wide route index, so steady-state ingest
  // never touches the name bytes.
  struct DictEntry {
    std::string name;
    uint32_t route = 0;
    bool has_route = false;
    bool bound = false;
  };

  struct Client {
    Client(MainLoop* loop, size_t max_line_bytes, size_t max_buffer)
        : framer(max_line_bytes), writer(loop, max_buffer) {}
    Socket socket;
    SourceId watch = 0;
    LineFramer framer;
    FramedWriter writer;          // server -> client egress (replies + tuples)
    std::unique_ptr<ControlSession> session;
    Nanos last_activity_ns = 0;   // loop clock at the last byte received
    // Binary wire protocol v2 state.
    WireMode wire = WireMode::kText;
    std::unique_ptr<wire::FrameDecoder> decoder;  // created at HELLO accept
    std::vector<DictEntry> dict;  // by id - 1 (per-connection namespace)
    bool binary_egress = false;   // replies/echo leave as binary frames
    wire::WireEncoder egress_enc; // staged echo samples (binary sessions)
    bool egress_flush_pending = false;  // a deferred FlushEgress is queued
  };

  struct FrameHandler;  // decoder callbacks -> BindDict/IngestRecords/HandleLine

  bool OnAcceptReady();
  bool OnClientReady(int client_key, IoCondition cond);
  void ProcessData(int client_key, Client& client, const char* data, size_t len);
  void HandleLine(int client_key, Client& client, std::string_view line);
  void HandleControlLine(int client_key, Client& client, std::string_view line);
  // HELLO negotiation (before the verb whitelist: no session is created).
  void HandleHello(Client& client, std::string_view rest);
  ControlSession& EnsureSession(int client_key, Client& client);
  void Reply(Client& client, std::string_view line);
  // Installs/updates one dictionary binding of a binary connection.
  void BindDict(Client& client, uint32_t id, std::string_view name);
  // Ingests a decoded sample batch (`n` records of kSampleRecordBytes).
  void IngestRecords(Client& client, int64_t base_time_ms, const char* records, size_t n);
  // Seals the staged echo samples of a binary session into one wire frame.
  void FlushEgress(Client& client);
  void ScheduleEgressFlush(int client_key, Client& client);
  // Folds a decoder's counters into stats_ (frames_rx / frames_crc_errors).
  void FoldDecoderStats(wire::FrameDecoder& decoder);
  // (Re)installs the session scope's echo tap in `mode`; records the mode.
  void InstallEchoTap(int client_key, Client& client, TapMode mode);
  // Maintenance sweep (idle_timeout_ms / degrade_stalled_ms): drops idle
  // clients and downgrades/restores pinned sessions' echo taps.
  bool Sweep();
  // Hands the chunk's shared batch to every scope (one O(1) span each).
  void FlushIngest();
  void DropClient(int client_key);

  MainLoop* loop_;
  StreamServerOptions options_;
  IngestRouter router_;

  Socket listener_;
  SourceId accept_watch_ = 0;
  SourceId sweep_timer_ = 0;
  uint16_t port_ = 0;

  std::map<int, std::unique_ptr<Client>> clients_;
  int next_client_key_ = 1;
  IngestTapFn ingest_tap_;
  // Liveness token for closures deferred through MainLoop::Invoke (session
  // egress errors): reset in the destructor, so a queued DropClient cannot
  // run against a destroyed server.
  std::shared_ptr<StreamServer> self_alias_{this, [](StreamServer*) {}};
  Stats stats_;
};

}  // namespace gscope

#endif  // GSCOPE_NET_STREAM_SERVER_H_
