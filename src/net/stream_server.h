// Gscope stream server (Section 4.4).
//
// "Clients asynchronously send BUFFER signal data in tuple format to the
// server.  The server receives data from one or more clients asynchronously
// and buffers the data.  It then displays these BUFFER signals to one or
// more scopes with a user-specified delay.  Data arriving at the server
// after this delay is not buffered but dropped immediately."
//
// I/O driven: a listen watch accepts clients, per-client watches parse
// newline-delimited tuples and push them into the display scopes' sample
// buffers (which apply the delay/late-drop policy).  Parsing and routing
// stay on the loop thread; with the default fanout_workers = -1 the router
// may spawn up to fanout_shards-1 persistent fan-out worker threads on a
// multi-core host (none on a single core) — set fanout_workers = 0 for a
// strictly single-threaded server.
//
// Ingest fast path: complete lines are framed with memchr and parsed in
// place from the read buffer (no copy except for lines split across reads).
// Routing and fan-out go through a shared IngestRouter: each read chunk is
// parsed once into a shared block and every scope receives an O(1) span, so
// adding display targets does not multiply per-tuple work (see
// core/ingest_bus.h).
#ifndef GSCOPE_NET_STREAM_SERVER_H_
#define GSCOPE_NET_STREAM_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "core/ingest_router.h"
#include "core/scope.h"
#include "net/socket.h"
#include "runtime/event_loop.h"

namespace gscope {

struct StreamServerOptions {
  // Create a BUFFER signal on the scope the first time a new tuple name
  // appears (remote signals are not known in advance).
  bool auto_create_signals = true;
  // Cap on concurrent clients; further connections are refused.
  size_t max_clients = 32;
  // Longest accepted tuple line.  A client that exceeds it (e.g. streams
  // garbage with no newlines) has the line counted as one parse error and
  // discarded; framing resynchronizes at the next newline.
  size_t max_line_bytes = 4096;
  // Fan-out sharding (see IngestRouterOptions): shards per flush and worker
  // threads (-1 = auto: 0 on a single-core host).
  size_t fanout_shards = 4;
  int fanout_workers = -1;
};

class StreamServer {
 public:
  struct Stats {
    int64_t connections = 0;
    int64_t disconnections = 0;
    int64_t refused = 0;
    int64_t tuples = 0;
    int64_t parse_errors = 0;
    int64_t dropped_late = 0;
    int64_t bytes = 0;
  };

  // `loop` and `scope` are not owned and must outlive the server.  `scope`
  // is the first display target; AddScope attaches more ("displays these
  // BUFFER signals to one or more scopes").
  StreamServer(MainLoop* loop, Scope* scope, StreamServerOptions options = {});
  ~StreamServer();

  // Fans incoming tuples out to an additional scope.  O(1); returns false
  // for null/duplicate scopes.  Scopes must outlive the server.
  bool AddScope(Scope* scope);
  bool RemoveScope(Scope* scope);
  size_t scope_count() const { return router_.scope_count(); }

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts accepting.
  bool Listen(uint16_t port);
  uint16_t port() const { return port_; }
  void Close();

  size_t client_count() const { return clients_.size(); }
  const Stats& stats() const { return stats_; }
  const IngestRouter& router() const { return router_; }

 private:
  struct Client {
    Socket socket;
    SourceId watch = 0;
    // Tail of a line split across reads (only split lines are ever copied).
    std::string line_buffer;
    // An over-long line is being discarded until the next newline.
    bool discarding = false;
  };

  bool OnAcceptReady();
  bool OnClientReady(int client_key, IoCondition cond);
  void ProcessData(Client& client, const char* data, size_t len);
  void HandleLine(std::string_view line);
  // Hands the chunk's shared batch to every scope (one O(1) span each).
  void FlushIngest();
  void DropClient(int client_key);

  MainLoop* loop_;
  StreamServerOptions options_;
  IngestRouter router_;

  Socket listener_;
  SourceId accept_watch_ = 0;
  uint16_t port_ = 0;

  std::map<int, std::unique_ptr<Client>> clients_;
  int next_client_key_ = 1;
  Stats stats_;
};

}  // namespace gscope

#endif  // GSCOPE_NET_STREAM_SERVER_H_
