// Gscope stream server (Section 4.4).
//
// "Clients asynchronously send BUFFER signal data in tuple format to the
// server.  The server receives data from one or more clients asynchronously
// and buffers the data.  It then displays these BUFFER signals to one or
// more scopes with a user-specified delay.  Data arriving at the server
// after this delay is not buffered but dropped immediately."
//
// Single-threaded and I/O driven: a listen watch accepts clients, per-client
// watches parse newline-delimited tuples and push them into the target
// scope's sample buffer (which applies the delay/late-drop policy).
//
// Ingest fast path: complete lines are framed with memchr and parsed in
// place from the read buffer (no copy except for lines split across reads),
// and each client caches name -> signal-id routes so steady-state tuples
// reach the scopes' buffers with no allocation and no name scan.
#ifndef GSCOPE_NET_STREAM_SERVER_H_
#define GSCOPE_NET_STREAM_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/scope.h"
#include "core/string_index.h"
#include "net/socket.h"
#include "runtime/event_loop.h"

namespace gscope {

struct StreamServerOptions {
  // Create a BUFFER signal on the scope the first time a new tuple name
  // appears (remote signals are not known in advance).
  bool auto_create_signals = true;
  // Cap on concurrent clients; further connections are refused.
  size_t max_clients = 32;
  // Longest accepted tuple line.  A client that exceeds it (e.g. streams
  // garbage with no newlines) has the line counted as one parse error and
  // discarded; framing resynchronizes at the next newline.
  size_t max_line_bytes = 4096;
};

class StreamServer {
 public:
  struct Stats {
    int64_t connections = 0;
    int64_t disconnections = 0;
    int64_t refused = 0;
    int64_t tuples = 0;
    int64_t parse_errors = 0;
    int64_t dropped_late = 0;
    int64_t bytes = 0;
  };

  // `loop` and `scope` are not owned and must outlive the server.  `scope`
  // is the first display target; AddScope attaches more ("displays these
  // BUFFER signals to one or more scopes").
  StreamServer(MainLoop* loop, Scope* scope, StreamServerOptions options = {});
  ~StreamServer();

  // Fans incoming tuples out to an additional scope.  Returns false for
  // null/duplicate scopes.  Scopes must outlive the server.
  bool AddScope(Scope* scope);
  bool RemoveScope(Scope* scope);
  size_t scope_count() const { return scopes_.size(); }

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts accepting.
  bool Listen(uint16_t port);
  uint16_t port() const { return port_; }
  void Close();

  size_t client_count() const { return clients_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  struct Client {
    Socket socket;
    SourceId watch = 0;
    // Tail of a line split across reads (only split lines are ever copied).
    std::string line_buffer;
    // An over-long line is being discarded until the next newline.
    bool discarding = false;
    // name -> per-scope routing keys, rebuilt when route_epoch changes.
    StringKeyedMap<std::vector<SignalId>> routes;
    uint64_t routes_epoch = 0;
    // Streams repeat names in runs; memoizing the last hit skips the hash
    // lookup for consecutive same-name tuples.  Points into `routes`.
    const std::vector<SignalId>* last_route = nullptr;
    std::string last_name;
  };

  bool OnAcceptReady();
  bool OnClientReady(int client_key, IoCondition cond);
  void ProcessData(Client& client, const char* data, size_t len);
  void HandleLine(Client& client, std::string_view line);
  // Pushes the chunk's accumulated samples into every scope in one batch
  // (one scope-time read and one lock round-trip per buffer shard).
  void FlushIngest();
  void DropClient(int client_key);
  // Changes whenever the scope list or any scope's signal table changes;
  // stale per-client route caches are invalidated by comparison.
  uint64_t RouteEpoch() const;

  MainLoop* loop_;
  std::vector<Scope*> scopes_;  // display targets; scopes_[0] is the primary
  StreamServerOptions options_;

  Socket listener_;
  SourceId accept_watch_ = 0;
  uint16_t port_ = 0;

  std::map<int, std::unique_ptr<Client>> clients_;
  int next_client_key_ = 1;
  uint64_t scopes_epoch_ = 0;
  // Per-scope sample accumulators for the current read chunk (reused; no
  // steady-state allocation).
  std::vector<std::vector<Sample>> ingest_scratch_;
  Stats stats_;
};

}  // namespace gscope

#endif  // GSCOPE_NET_STREAM_SERVER_H_
