// Gscope stream server (Section 4.4) with the remote scope control channel.
//
// "Clients asynchronously send BUFFER signal data in tuple format to the
// server.  The server receives data from one or more clients asynchronously
// and buffers the data.  It then displays these BUFFER signals to one or
// more scopes with a user-specified delay.  Data arriving at the server
// after this delay is not buffered but dropped immediately."
//
// Wire protocol (tuple lines AND the control verbs): docs/protocol.md.
//
// I/O driven: a listen watch accepts clients, per-client watches parse
// newline-delimited lines and push tuples into the display scopes' sample
// buffers (which apply the delay/late-drop policy).  With the default
// fanout_workers = -1 the router may spawn up to fanout_shards-1 persistent
// fan-out worker threads on a multi-core host (none on a single core) — set
// fanout_workers = 0 for a strictly single-threaded server.
//
// Sharded accept (options.loops > 1): accepted connections spread across N
// per-core event loops (runtime/loop_pool.h).  Each loop owns its clients
// end to end — fd watch, line framing, control sessions, session scopes,
// FramedWriter egress, liveness/degradation sweep — so the per-iteration
// costs that grow with session count (the poll(2) fd set, the timer heap,
// the sweep walk) divide by N.  Preferred mechanism is one SO_REUSEPORT
// listener per loop (the kernel spreads connections); when the platform
// lacks it the primary loop keeps a single acceptor and hands each
// connection to the least-loaded loop.  Shared state crosses loops at
// exactly two points, both serialized inside the router when loops > 1:
// the IngestRouter's route tables (epoch-snapshot rebuilds under its lock)
// and the scopes' span queues (already thread-safe for the fan-out
// workers).  Server-wide Stats are relaxed per-field atomics
// (runtime/relaxed_counter.h).  loops = 1 (the default) takes none of the
// locks and spawns no threads: byte-identical to the pre-sharding server.
//
// Control channel: a client line starting with a letter is a control verb
// (AUTH / SUB / UNSUB / DELAY / LIST / STATS / PING / TIME).  The first
// whitelisted verb turns the connection into a *remote scope session*: the
// server creates a dedicated Scope, registers it with the IngestRouter
// under the session's SignalFilter — so the route table excludes
// non-subscribed signals at build time, never per sample — and streams
// every sample routed to that scope back down the same connection in tuple
// format, through a bounded FramedWriter (whole tuples are dropped on
// backlog overflow, never partial lines).  Display targets thus attach over
// the network, with their own glob subscriptions and late-drop delay,
// without any process-local AddScope call.
//
// Multi-tenant hardening: "AUTH <token>" (validated against
// options.auth_tokens) moves the connection into a tenant namespace.  Every
// tuple the connection ingests afterwards is stored under
// "<ns>\x1f<name>", and its session filter only ever matches names carrying
// that prefix — so one tenant's "SUB *" can never observe another tenant's
// (or the anonymous default's) signals, and vice versa.  The echo tap
// strips the prefix again: tenants see their own bare names.  Failed AUTH
// replies "ERR AUTH bad-token" and leaves the connection usable as
// anonymous.  Per-session quotas (quota_* options) bound what one tenant
// can cost the server: subscription pattern count, SUB/UNSUB churn rate,
// and echo egress bytes/sec (control replies are exempt — quota pressure
// must not make the protocol itself unresponsive).
//
// Ingest fast path: complete lines are framed with memchr and parsed in
// place from the read buffer (no copy except for lines split across reads).
// Routing and fan-out go through a shared IngestRouter: each read chunk is
// parsed once into a shared block and every scope receives an O(1) span, so
// adding display targets does not multiply per-tuple work (see
// core/ingest_bus.h).
#ifndef GSCOPE_NET_STREAM_SERVER_H_
#define GSCOPE_NET_STREAM_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/envelope.h"
#include "core/ingest_router.h"
#include "core/scope.h"
#include "core/tuple.h"
#include "core/signal_filter.h"
#include "freq/window.h"
#include "net/frame_codec.h"
#include "net/line_framer.h"
#include "net/socket.h"
#include "record/recorder.h"
#include "runtime/event_loop.h"
#include "runtime/framed_writer.h"
#include "runtime/loop_pool.h"
#include "runtime/relaxed_counter.h"

namespace gscope {

struct StreamServerOptions {
  // Create a BUFFER signal on the scope the first time a new tuple name
  // appears (remote signals are not known in advance).
  bool auto_create_signals = true;
  // Cap on concurrent clients; further connections are refused.  With
  // loops > 1 the cap is enforced against a relaxed sum of per-loop counts,
  // so a simultaneous accept burst across loops may briefly overshoot by at
  // most loops-1 connections.
  size_t max_clients = 32;
  // Longest accepted line.  A client that exceeds it (e.g. streams garbage
  // with no newlines) has the line counted as one parse error and discarded;
  // framing resynchronizes at the next newline.  A line of exactly this many
  // bytes (newline excluded) parses, however it is split across reads.
  size_t max_line_bytes = 4096;
  // Fan-out sharding (see IngestRouterOptions): shards per flush and worker
  // threads (-1 = auto: 0 on a single-core host).
  size_t fanout_shards = 4;
  int fanout_workers = -1;
  // Accept sharding: per-core event loops owning the accepted connections
  // (header comment).  1 = the single-loop pre-sharding server; values are
  // clamped to >= 1.
  size_t loops = 1;
  // Prefer one SO_REUSEPORT listener per loop (kernel-spread accepts) when
  // loops > 1; off — or unsupported at runtime — falls back to a single
  // acceptor on the primary loop handing connections to the least-loaded
  // loop.
  bool reuse_port = true;
  // Multi-tenant access control: token -> namespace.  Empty = every AUTH
  // fails and all connections stay in the anonymous default namespace.
  // (std::less<> keys: token lookup straight from the wire string_view.)
  std::map<std::string, std::string, std::less<>> auth_tokens;
  // Per-session quotas, each 0 = unlimited.  Violations reply
  // deterministically ("ERR SUB quota-patterns", "ERR <verb> quota-churn")
  // or silently drop echo frames (egress), and count in stats().quota_drops.
  size_t quota_max_patterns = 0;            // SUB patterns per session
  size_t quota_sub_churn = 0;               // SUB/UNSUB verbs per window
  int64_t quota_churn_window_ms = 1000;     // the churn window
  int64_t quota_egress_bytes_per_sec = 0;   // echo bytes/sec (token bucket)
  // Control channel (docs/protocol.md).  Off = every line is a tuple line,
  // the pre-control behaviour.
  bool enable_control = true;
  // Per-session egress backlog cap; overload discards whole tuples only,
  // never partial lines.  The victim is chosen by control_overflow_policy:
  // drop-newest (counted in echo_dropped, the default), or drop-oldest
  // (evict from the backlog head, counted in echo_evicted, so a stalled
  // viewer resumes at the newest data).  kBlockWithDeadline is accepted but
  // blocks the owning loop up to control_block_deadline_ms per frame - only
  // sensible for single-viewer embeddings.
  size_t control_max_buffer = 1 << 20;
  OverflowPolicy control_overflow_policy = OverflowPolicy::kDropNewest;
  int64_t control_block_deadline_ms = 0;
  // SO_SNDBUF for a session's egress socket, 0 = kernel default.  Small
  // values surface a slow subscriber in the session writer's backlog - where
  // the overflow policy and the degradation sweep can see it - instead of in
  // kernel buffering.
  int control_sndbuf_bytes = 0;
  // SO_RCVBUF applied to every accepted connection, 0 = kernel default.  A
  // small value makes a deliberately slow/paused server exert backpressure
  // on producers quickly (stress harnesses) instead of hiding behind kernel
  // buffering.
  int client_rcvbuf_bytes = 0;
  // Polling period of the per-session scopes: the granularity at which
  // matched tuples are drained and echoed to subscribers.
  int64_t control_poll_period_ms = 10;
  // Geometry of the per-session scopes (they render like any other scope
  // should the operator want a server-side view of a session).
  int control_scope_width = 128;
  int control_scope_height = 64;
  // Liveness: drop a client that has sent nothing (tuples, verbs or PINGs)
  // for this long.  0 = never; the pre-robustness behaviour.  Clients that
  // enable their own ping_interval_ms stay alive through idle periods.
  int64_t idle_timeout_ms = 0;
  // Graceful degradation: when a session's egress backlog stays pinned (at
  // or above half the cap, or losing frames) for this long, its echo tap is
  // downgraded to TapMode::kCoalesced - the subscriber keeps seeing the
  // freshest value of every signal instead of being evicted - and a
  // "NOTICE DEGRADE coalesced" reply is sent.  Once the backlog drains calm
  // for the same window the per-sample tap is restored ("NOTICE RESTORE
  // every-sample").  0 = never degrade.
  int64_t degrade_stalled_ms = 0;
  // Flight recorder (docs/protocol.md "Flight recorder").  RECORD <path>
  // starts a crash-safe columnar capture of every routed sample into an
  // extent log at <path> (record/extent_log.h geometry below); REPLAY
  // streams a window back through the session filter.  RECORD is an
  // operator action restricted to anonymous (non-tenant) sessions; REPLAY
  // is open to tenants (the filter keeps time travel inside the namespace).
  size_t record_extent_bytes = 64 * 1024;
  size_t record_max_extents = 256;
  FsyncPolicy record_fsync_policy = FsyncPolicy::kNone;
  int64_t record_fsync_interval_ms = 1000;
  int64_t record_poll_period_ms = 10;
  // Hard cap on the records one REPLAY verb may buffer (the window is read
  // into memory before emission); excess records past the cap are cut.
  size_t replay_max_samples = 1 << 20;
};

class StreamServer {
 public:
  // Server-wide counters.  RelaxedCounter fields: with loops > 1 every loop
  // thread bumps and any thread reads; each counter is an independent
  // monotone tally, so relaxed atomics are the whole contract.
  struct Stats {
    RelaxedCounter connections;
    RelaxedCounter disconnections;
    RelaxedCounter refused;
    RelaxedCounter tuples;
    RelaxedCounter parse_errors;
    RelaxedCounter dropped_late;
    RelaxedCounter bytes;
    // Control channel.
    RelaxedCounter control_commands;  // recognized verbs, accepted or rejected
    // Rejected control interactions: recognized verbs that failed
    // (malformed arguments - counted even before a session exists, when no
    // ERR reply can be carried - or semantic failures like a duplicate
    // pattern or a quota) plus unknown verbs on an existing session.
    // Unknown verbs without a session count only as parse_errors, like any
    // garbage line.
    RelaxedCounter control_errors;
    RelaxedCounter sessions_opened;   // connections that became scope sessions
    RelaxedCounter tuples_echoed;     // tuples streamed back to subscribers
    RelaxedCounter echo_dropped;      // egress overflow: newest frame dropped
    RelaxedCounter echo_evicted;      // egress overflow: oldest frames evicted
    // Liveness and degradation (all 0 unless the matching option is on).
    RelaxedCounter pings_received;      // PING verbs answered with PONG
    RelaxedCounter time_requests;       // TIME verbs answered with OK TIME
    RelaxedCounter taps_downgraded;     // echo taps switched to kCoalesced
    RelaxedCounter taps_restored;       // echo taps switched back to kEverySample
    RelaxedCounter clients_idle_dropped;  // clients dropped by idle_timeout_ms
    // Adaptive overflow-policy transitions across session writers (live sum
    // plus sessions already retired; see DropClient).
    RelaxedCounter policy_switches;
    // Binary wire protocol v2 (docs/protocol.md "Binary wire protocol").
    RelaxedCounter frames_rx;          // binary frames accepted (CRC-verified)
    RelaxedCounter frames_crc_errors;  // loss-of-sync events (bad CRC/header/torn)
    RelaxedCounter dict_entries;       // dictionary bindings installed/changed
    // Multi-tenant hardening.
    RelaxedCounter auth_failures;      // AUTH verbs with an unknown token
    RelaxedCounter quota_drops;        // quota rejections + egress quota drops
    // Derived-signal pipelines (docs/protocol.md "Derived-signal
    // pipelines").  stage_evals counts stage evaluations, once per input
    // sample per stage group - N identical subscriptions sharing a group
    // add 1, not N, per sample (the share-once proof tests assert on it).
    RelaxedCounter stage_evals;
    RelaxedCounter tuples_derived;     // derived tuples delivered to members
    RelaxedCounter stages_active;      // live stage groups (gauge)
    // Egress quota drops split by wire format: text counts dropped tuple
    // lines, binary counts dropped SAMPLES frames (each worth many tuples;
    // the per-tuple tally stays in quota_drops).
    RelaxedCounter quota_drops_text;
    RelaxedCounter quota_drops_bin;
  };

  // Observes every successfully parsed ingest tuple line, before routing and
  // late-drop.  The view borrows the read buffer: copy what must outlive the
  // call.  For harnesses/diagnostics; parsing is repeated for the tap, so
  // leave it unset on hot production paths.  Set before Listen(): with
  // loops > 1 the tap runs on whichever loop owns the producer.
  using IngestTapFn = std::function<void(const TupleView& tuple)>;
  void SetIngestTap(IngestTapFn fn) { ingest_tap_ = std::move(fn); }

  // `loop` and `scope` are not owned and must outlive the server.  `loop`
  // is shard 0 (the caller keeps running it); options.loops-1 further loops
  // get dedicated threads between Listen() and Close().  `scope` is the
  // first display target; AddScope attaches more ("displays these BUFFER
  // signals to one or more scopes").  `scope` may be null for a
  // control-only server whose display targets all attach over the wire.
  StreamServer(MainLoop* loop, Scope* scope, StreamServerOptions options = {});
  ~StreamServer();

  // Fans incoming tuples out to an additional scope.  O(1); returns false
  // for null/duplicate scopes.  Scopes must outlive the server.  App scopes
  // live on the primary loop; with loops > 1 put them in concurrent mode
  // (Scope::SetConcurrent) before registering.
  bool AddScope(Scope* scope);
  bool RemoveScope(Scope* scope);
  size_t scope_count() const { return router_.scope_count(); }

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  // Binds 127.0.0.1:`port` (0 = ephemeral), starts the loop pool and begins
  // accepting.
  bool Listen(uint16_t port);
  uint16_t port() const { return port_; }
  // Graceful shutdown: every shard drains on its own loop (watches removed,
  // sessions unregistered, clients destroyed where they live), then the
  // worker loops stop.  Safe to call from the primary thread only.
  void Close();

  size_t client_count() const;
  // Connected clients currently holding a remote scope session.
  size_t control_session_count() const;
  // Sharding introspection (tests/benches): loop count, the accept
  // mechanism in use, and the per-shard client spread.
  size_t loop_count() const { return pool_.size(); }
  bool reuse_port_active() const { return reuse_port_active_; }
  size_t shard_client_count(size_t i) const;
  // Folds every loop's timer accounting (sum + worst loop): the sharded
  // "is the server keeping up?" answer.  Primary thread only.
  TimerStatsAggregate GatherTimerStats() { return pool_.GatherTimerStats(); }
  const Stats& stats() const { return stats_; }
  const IngestRouter& router() const { return router_; }

 private:
  struct LoopShard;
  struct Client;
  struct StageGroup;

  // One parsed server-side processing stage (docs/protocol.md
  // "Derived-signal pipelines").  `text` is the canonical spec - numbers
  // re-rendered shortest-form, the SPECTRUM window always spelled out - so
  // equal stages key equal regardless of how the client wrote them.
  struct StageSpec {
    enum class Kind : uint8_t { kNone, kDecimate, kEwma, kEnvelope, kSpectrum };
    Kind kind = Kind::kNone;
    int64_t factor = 0;       // DECIMATE n / SPECTRUM block size
    double alpha = 0.0;       // EWMA smoothing factor, (0, 1]
    int64_t window_ms = 0;    // ENVELOPE window
    WindowKind window = WindowKind::kHann;  // SPECTRUM taper
    std::string text;         // canonical spec, e.g. "DECIMATE 10"
  };

  // One paced time-travel replay (REPLAY with speed > 0): the filtered
  // window is buffered up front and a shard-loop timer emits records as
  // recorded time advances at `speed` x the loop clock - deterministic
  // under a SimClock.  Owned by the session; the timer is cancelled with
  // the client (DropClient / Close).
  struct ReplayJob {
    std::vector<ReplayRecord> records;  // filtered, time-ordered window
    std::vector<std::string> names;     // record name ids -> stored names
    size_t next = 0;
    int64_t t0 = 0;
    double speed = 1.0;
    Nanos start_ns = 0;
    SourceId timer = 0;
    int64_t emitted = 0;
  };

  // One remote scope session: the server-side half of a control connection.
  // The egress FramedWriter lives on the Client (every connection can carry
  // replies - e.g. the HELLO negotiation - before it becomes a session).
  struct ControlSession {
    SignalFilter filter;          // registered with the router; epoch-coupled
    std::unique_ptr<Scope> scope; // the session's display target
    // Degradation sweep state (loop clock; see Sweep()).
    TapMode tap_mode = TapMode::kEverySample;
    Nanos stalled_since_ns = -1;  // first sweep that saw the backlog pinned
    Nanos calm_since_ns = -1;     // first sweep that saw it calm again
    int64_t last_loss_frames = 0; // writer drops+evictions at the last sweep
    // Attached processing stage (kind == kNone when raw).  While staged the
    // session's own scope is unregistered from the router and `group`
    // points at the shared stage the session rides.
    StageSpec stage;
    StageGroup* group = nullptr;
    // In-flight paced replay (null when none).
    std::unique_ptr<ReplayJob> replay;
  };

  // Inbound wire format of one connection (docs/protocol.md).  Text is the
  // default forever; HELLO BIN upgrades one way.  kBinaryPending covers the
  // window between "OK HELLO" and the client's first binary frame: text
  // lines still parse, and the first frame magic at a line boundary flips
  // the connection to kBinary.
  enum class WireMode : uint8_t { kText, kBinaryPending, kBinary };

  // One dictionary binding of a binary connection: id -> interned name and
  // (when resolvable) the server-wide route index, so steady-state ingest
  // never touches the name bytes.  routed_name carries the tenant prefix
  // (the stored identity); name stays the bare wire form for echo/tap use.
  struct DictEntry {
    std::string name;
    std::string routed_name;
    uint32_t route = 0;
    bool has_route = false;
    bool bound = false;
  };

  struct Client {
    Client(MainLoop* loop, size_t max_line_bytes, size_t max_buffer)
        : framer(max_line_bytes), writer(loop, max_buffer) {}
    LoopShard* shard = nullptr;   // owning shard (stable; see shards_)
    int key = 0;                  // this client's key in shard->clients
    MainLoop* loop = nullptr;     // == shard->loop; every callback runs here
    Socket socket;
    SourceId watch = 0;
    LineFramer framer;
    FramedWriter writer;          // server -> client egress (replies + tuples)
    std::unique_ptr<ControlSession> session;
    Nanos last_activity_ns = 0;   // loop clock at the last byte received
    // Tenant namespace ("" = anonymous); set by a successful AUTH.
    std::string ns;
    // SUB/UNSUB churn quota window (loop clock).
    Nanos churn_window_start_ns = -1;
    size_t churn_count = 0;
    // Echo egress token bucket (quota_egress_bytes_per_sec); deficit
    // semantics: a frame that fits the last token may overdraw, the refill
    // pays the debt.  Burst capacity = one second's worth.
    int64_t egress_tokens = 0;
    Nanos egress_refill_ns = -1;
    // Binary wire protocol v2 state.
    WireMode wire = WireMode::kText;
    std::unique_ptr<wire::FrameDecoder> decoder;  // created at HELLO accept
    std::vector<DictEntry> dict;  // by id - 1 (per-connection namespace)
    bool binary_egress = false;   // replies/echo leave as binary frames
    wire::WireEncoder egress_enc; // staged echo samples (binary sessions)
    bool egress_flush_pending = false;  // a deferred FlushEgress is queued
    std::string egress_scratch;   // one sealed egress frame (quota-gated whole)
  };

  // One shared processing stage: every session on this shard whose
  // (namespace, delay, pattern set, stage spec) tuple matches `key` rides
  // this group.  The group owns its own router-registered Scope; the
  // every-sample tap evaluates the stage once per input sample and fans the
  // derived tuples out to every member - N identical subscriptions cost one
  // evaluation (stats_.stage_evals) and N deliveries (stats_.tuples_derived).
  // Owned by (and only touched from) the shard's loop.
  struct StageGroup {
    std::string key;
    std::string ns;               // members' shared tenant namespace
    StageSpec spec;
    SignalFilter filter;          // copy of the members' pattern set
    std::unique_ptr<Scope> scope; // router-registered evaluation tap
    LoopShard* shard = nullptr;
    std::vector<Client*> members; // stable Client pointers (see clients map)
    // Per-signal stage state, keyed by the bare (prefix-stripped) name.
    struct SignalState {
      int64_t count = 0;              // DECIMATE position
      bool has_ewma = false;
      double ewma = 0.0;
      Envelope env{1};                // width-1 envelope = running min/max
      bool has_window = false;        // ENVELOPE window open
      int64_t window_start_ms = 0;
      std::vector<double> one = {0.0};  // reusable 1-sample sweep
      std::vector<double> block;      // SPECTRUM accumulation
      int64_t block_start_ms = 0;
      int64_t last_ms = 0;
      std::string scratch_name;       // derived-name assembly buffer
    };
    std::map<std::string, SignalState, std::less<>> signals;
    // Frame-relay egress: derived samples staged once, the sealed SAMPLES
    // frame broadcast byte-identical to every binary member (per-frame
    // dictionaries make frames self-contained).
    wire::WireEncoder enc;
    bool flush_pending = false;     // a deferred FlushGroupEgress is queued
    std::string text_scratch;       // one formatted tuple line
    std::string frame_scratch;      // one sealed SAMPLES frame
  };

  // One accept shard: everything below is owned by (and only touched from)
  // `loop`, except the two atomics, which any thread may read.  Shards are
  // heap-allocated once in the constructor and never move: raw LoopShard*
  // stays valid in every deferred closure for the server's lifetime.
  struct LoopShard {
    MainLoop* loop = nullptr;
    size_t index = 0;
    Socket listener;              // reuse-port mode: every shard; else shard 0
    SourceId accept_watch = 0;
    SourceId sweep_timer = 0;
    std::map<int, std::unique_ptr<Client>> clients;
    // Shared stage groups, keyed by StageKey(ns, delay, patterns, spec).
    // Per shard: members always share the owning loop, so evaluation and
    // fan-out never cross threads.
    std::map<std::string, std::unique_ptr<StageGroup>, std::less<>> stage_groups;
    std::atomic<size_t> client_count{0};
    std::atomic<size_t> session_count{0};
  };

  struct FrameHandler;  // decoder callbacks -> BindDict/IngestRecords/HandleLine

  bool OnAcceptReady(LoopShard& shard);
  // Finishes an accepted connection on its owning loop.  `counted` = the
  // hand-off acceptor already charged shard.client_count (it pre-counts so
  // a burst balances against in-flight hand-offs).
  void SetupClient(LoopShard& shard, Socket conn, bool counted);
  LoopShard* PickShard();
  bool OnClientReady(LoopShard& shard, int client_key, IoCondition cond);
  void ProcessData(LoopShard& shard, int client_key, Client& client,
                   const char* data, size_t len);
  void HandleLine(LoopShard& shard, int client_key, Client& client,
                  std::string_view line);
  void HandleControlLine(LoopShard& shard, int client_key, Client& client,
                         std::string_view line);
  // HELLO negotiation (before the verb whitelist: no session is created).
  void HandleHello(Client& client, std::string_view rest);
  // AUTH <token>: tenant namespace entry (before the whitelist, like HELLO:
  // authenticating must not cost a scope).
  void HandleAuth(Client& client, std::string_view rest);
  // Quota primitives (docs/protocol.md "Quotas").
  bool ChurnAllowed(Client& client);
  bool EgressAllowed(Client& client);
  void ChargeEgress(Client& client, size_t bytes);
  ControlSession& EnsureSession(LoopShard& shard, int client_key, Client& client);
  void Reply(Client& client, std::string_view line);
  // Installs/updates one dictionary binding of a binary connection.
  void BindDict(Client& client, uint32_t id, std::string_view name);
  // Ingests a decoded sample batch (`n` records of kSampleRecordBytes).
  void IngestRecords(Client& client, int64_t base_time_ms, const char* records, size_t n);
  // Seals the staged echo samples of a binary session into one wire frame.
  void FlushEgress(Client& client);
  void ScheduleEgressFlush(int client_key, Client& client);
  // Folds a decoder's counters into stats_ (frames_rx / frames_crc_errors).
  void FoldDecoderStats(wire::FrameDecoder& decoder);
  // (Re)installs the session scope's echo tap in `mode`; records the mode.
  // For a registered scope, call under router_.LockRoutes() when loops > 1
  // (a table rebuild reads the tap's history requirement).
  void InstallEchoTap(LoopShard& shard, int client_key, Client& client, TapMode mode);
  // Derived-signal pipelines (docs/protocol.md "Derived-signal pipelines").
  // ParseStageSpec fills `spec` from a stage verb + argument tokens; on
  // failure returns false and fills `err` with the ERR reply body.
  static bool ParseStageSpec(std::string_view verb, std::string_view arg,
                             std::string_view arg2, StageSpec& spec,
                             std::string& err);
  // The group identity: namespace, session delay, sorted pattern set and
  // canonical spec text, joined so equal subscriptions share one group.
  static std::string StageKey(std::string_view ns, int64_t delay_ms,
                              const SignalFilter& filter, std::string_view spec);
  // Moves the session into the group matching (its current filter/delay/ns,
  // `spec`), creating the group on first use; the session's own scope is
  // unregistered while staged.  No-op when already in the right group.
  void AttachStage(LoopShard& shard, Client& client, const StageSpec& spec);
  // Re-keys a staged session after its filter/delay/namespace changed.
  void ReattachStage(LoopShard& shard, Client& client);
  // Leaves the stage group (destroying it when it empties) and restores the
  // session's own scope + echo tap in `mode`.
  void DetachStage(LoopShard& shard, Client& client, TapMode mode);
  // Removes the client from its group; tears the group down when empty.
  void LeaveGroup(LoopShard& shard, Client& client);
  // The group scope's every-sample tap: evaluates the stage once and fans
  // derived tuples out to every member.
  void EvaluateStage(StageGroup& group, std::string_view name, int64_t time_ms,
                     double value);
  // Delivers one derived tuple: text members get the line formatted once;
  // binary members share the group's staged SAMPLES frame.
  void EmitDerived(StageGroup& group, std::string_view name, int64_t time_ms,
                   double value);
  // Seals the group's staged samples into one frame and broadcasts the
  // identical bytes to every binary member (per-member quota gated).
  void FlushGroupEgress(StageGroup& group);
  void ScheduleGroupFlush(StageGroup& group);
  // Flight recorder (docs/protocol.md "Flight recorder").  HandleRecord
  // resolves RECORD <path> / RECORD OFF into `reply`; HandleReplay sends its
  // own replies (OK + the window + INFO REPLAY DONE, or an ERR).
  void HandleRecord(std::string_view arg, std::string& reply);
  void HandleReplay(LoopShard& shard, int client_key, Client& client,
                    int64_t t0, int64_t t1, double speed);
  // Paced-replay timer body: emits records due at the current virtual time;
  // false (removing the timer) after the DONE marker.
  bool ReplayTick(LoopShard& shard, int client_key);
  // Re-serializes one recorded sample down the session, exactly like the
  // echo tap (prefix strip, egress quota, text line or staged binary frame).
  void EmitReplayTuple(Client& client, std::string_view stored_name,
                       int64_t time_ms, double value);
  void CancelReplay(LoopShard& shard, Client& client);
  // Folds the live recorder's counters into record_retired_ before it is
  // destroyed (record_mu_ held), so STATS stays monotone across RECORD OFF.
  void FoldRecorderLocked();
  // Maintenance sweep (idle_timeout_ms / degrade_stalled_ms): drops idle
  // clients and downgrades/restores pinned sessions' echo taps.  One per
  // shard, on the shard's loop.
  bool Sweep(LoopShard& shard);
  // Hands the chunk's shared batch to every scope (one O(1) span each).
  void FlushIngest();
  void DropClient(LoopShard& shard, int client_key);
  // Snapshot of the liveness token for deferred closures.  Loop threads take
  // this while the owner thread may be resetting self_alias_ in the
  // destructor, and shared_ptr is not safe for a concurrent read and write
  // of the same object - hence the lock (cold path: connection setup and
  // flush scheduling only).
  std::weak_ptr<StreamServer> WeakSelf();

  MainLoop* loop_;
  StreamServerOptions options_;
  IngestRouter router_;
  LoopPool pool_;
  std::vector<std::unique_ptr<LoopShard>> shards_;
  bool reuse_port_active_ = false;
  uint16_t port_ = 0;

  std::atomic<int> next_client_key_{1};
  std::atomic<int> next_stage_id_{1};
  IngestTapFn ingest_tap_;
  // Flight recorder: one capture per server, started/stopped by RECORD
  // verbs that may arrive on any shard loop - hence the mutex (cold path;
  // the capture itself runs on the recorder's own thread).  record_path_
  // survives RECORD OFF so a stopped recording stays replayable.
  std::mutex record_mu_;
  std::unique_ptr<Recorder> recorder_;
  std::string record_path_;
  // Counters of recorders already retired (STATS monotonicity).
  struct RecordTallies {
    int64_t samples_captured = 0;
    int64_t extents_sealed = 0;
    int64_t extents_recovered = 0;
    int64_t extents_dropped = 0;
    int64_t capture_bytes = 0;
  };
  RecordTallies record_retired_;
  // Liveness token for closures deferred through MainLoop::Invoke (session
  // egress errors, cross-loop hand-offs): reset in the destructor, so a
  // queued DropClient cannot run against a destroyed server.  Guarded by
  // self_alias_mu_; read via WeakSelf().
  std::mutex self_alias_mu_;
  std::shared_ptr<StreamServer> self_alias_{this, [](StreamServer*) {}};
  Stats stats_;
};

}  // namespace gscope

#endif  // GSCOPE_NET_STREAM_SERVER_H_
