// Deterministic fault injection at the Socket / FramedWriter syscall
// boundary.
//
// "Faults in Linux" (PAPERS.md) makes the case bluntly: error-handling code
// that is never executed is where defects concentrate.  gscope's transport
// has many such paths - short reads, partial writes, EAGAIN storms, EINTR
// mid-call, peers resetting mid-frame - that a loopback test on a healthy
// kernel will essentially never take.  This shim lets a test *script* them:
//
//   FaultInjector fi(/*seed=*/42);
//   fi.AddRule(FaultInjector::ShortReads(1));              // 1-byte reads
//   fi.AddRule(FaultInjector::ErrnoStorm(FaultOp::kWrite, EINTR, 5));
//   FaultInjector::ScopedInstall guard(&fi);
//   ... run the client/server under test ...
//
// Every Socket::Read/Write/Connect/Accept/ReadDatagram call (and every
// FramedWriter drain write) first consults the installed injector, which
// walks its rule list in order and applies the first armed rule matching
// the (operation, fd) pair.  Rules fire a scripted number of times after a
// scripted number of matching calls, optionally behind a seeded coin - so a
// schedule is reproducible from (seed, rules) alone, with no wall-clock or
// entropy nondeterminism.
//
// When no injector is installed the cost is one relaxed atomic load per
// call; production binaries never pay for the machinery they don't use.
// Intercept() itself takes a mutex: the stress harness drives sockets from
// producer threads, and a test-only shim prefers correctness to speed.
#ifndef GSCOPE_NET_FAULT_INJECTOR_H_
#define GSCOPE_NET_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <random>
#include <vector>

#include "runtime/clock.h"

namespace gscope {

// The intercepted operations, one per syscall family the net layer makes,
// plus the flight recorder's file-I/O boundary (src/record/extent_log.cc):
// error handling around open/pwrite/fsync is exactly the never-executed-on-
// a-healthy-box code the Linux fault study warns about, so the recorder's
// recovery paths must be reachable deterministically from (seed, rules) too.
enum class FaultOp : uint8_t {
  kRead = 0,      // Socket::Read
  kWrite,         // Socket::Write and FramedWriter drains
  kConnect,       // Socket::Connect's connect(2)
  kAccept,        // Socket::Accept's accept(2)
  kRecvDatagram,  // Socket::ReadDatagram's recvmsg(2)
  kFileOpen,      // ExtentLog's open(2)
  kFileWrite,     // ExtentLog's pwrite(2) (kPartialWrite clamps it short)
  kFileSync,      // ExtentLog's fsync(2)
  kFileTruncate,  // ExtentLog recovery's ftruncate(2)
};

// One scripted fault.  Rules are consulted in insertion order; the first
// armed rule matching (op, fd) decides the call.
struct FaultRule {
  enum class Action : uint8_t {
    kErrno,         // fail the call with `err` (EINTR, EAGAIN, ECONNRESET...)
    kShortRead,     // clamp a read's buffer to `clamp` bytes
    kPartialWrite,  // clamp a write's length to `clamp` bytes
    kKill,          // shutdown(2) the fd mid-call: the peer sees a mid-frame
                    // EOF/reset, the caller gets ECONNRESET
    kDelay,         // sleep `delay_ns` of real time, then let the call run
  };

  FaultOp op = FaultOp::kRead;
  Action action = Action::kErrno;
  int err = 0;           // kErrno: the errno to fail with
  size_t clamp = 1;      // kShortRead/kPartialWrite: max bytes (floor 1 -
                         // a zero-byte read would fabricate an EOF)
  Nanos delay_ns = 0;    // kDelay: injected latency
  int fd = -1;           // only this fd (-1 = any)
  int skip = 0;          // matching calls to let through before arming
  int count = -1;        // firings before the rule exhausts (-1 = forever)
  double probability = 1.0;  // seeded coin per armed matching call
};

// What the shim should do for one call.  Applied by the caller (the shim
// owns the actual syscalls; the injector only decides).
struct FaultDecision {
  bool fail = false;  // fail with errno `err` without issuing the syscall
  int err = 0;
  size_t max_len = static_cast<size_t>(-1);  // clamp read/write length
  bool kill = false;                          // shutdown(fd) first
  Nanos delay_ns = 0;                         // sleep first
};

class FaultInjector {
 public:
  struct Stats {
    int64_t intercepted_calls = 0;  // calls that consulted the rule list
    int64_t faults_injected = 0;    // calls a rule actually altered
    int64_t errnos_injected = 0;
    int64_t short_reads = 0;
    int64_t partial_writes = 0;
    int64_t kills = 0;
    int64_t delays = 0;
  };

  explicit FaultInjector(uint32_t seed = 1) : rng_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;
  ~FaultInjector();

  // Appends one rule (thread-safe).  Rules keep per-rule skip/count state;
  // re-adding a rule rearms it.
  void AddRule(const FaultRule& rule);
  void Clear();

  // Common schedules, named for what they simulate.
  static FaultRule ShortReads(size_t max_bytes, int count = -1);
  static FaultRule PartialWrites(size_t max_bytes, int count = -1);
  // `count` consecutive failures with `err`, after `skip` healthy calls.
  // With EINTR this is the "signal storm" mode (every syscall interrupted);
  // with EAGAIN it simulates a kernel that keeps reporting full buffers.
  static FaultRule ErrnoStorm(FaultOp op, int err, int count, int skip = 0);
  // Kills the connection under the Nth matching call (mid-frame when the
  // caller is mid-backlog): shutdown(2), then ECONNRESET to the caller.
  static FaultRule KillConnection(FaultOp op, int skip = 0);
  static FaultRule Latency(FaultOp op, Nanos delay_ns, int count = -1);

  // Decides one call.  `len` is the caller's buffer length (0 for connect/
  // accept).  Thread-safe; deterministic given the seed and call sequence.
  FaultDecision Intercept(FaultOp op, int fd, size_t len);

  Stats stats() const;

  // -- process-global installation ------------------------------------------
  // The Socket/FramedWriter shims consult the installed injector.  One
  // injector at a time; nullptr uninstalls.  Tests use the scoped guard so
  // an assertion failure cannot leak faults into the next test.
  static void Install(FaultInjector* injector);
  static FaultInjector* installed();

  class ScopedInstall {
   public:
    explicit ScopedInstall(FaultInjector* injector) { Install(injector); }
    ~ScopedInstall() { Install(nullptr); }
    ScopedInstall(const ScopedInstall&) = delete;
    ScopedInstall& operator=(const ScopedInstall&) = delete;
  };

  // The shim the net/runtime syscall sites call.  Consults the installed
  // injector (if any) for one call on `fd`.  Returns true when the call must
  // fail immediately, with errno already set; otherwise *len (when given) may
  // have been clamped to force a short read or partial write.  Kill decisions
  // shut the socket down first so the peer observes a mid-frame close, then
  // surface ECONNRESET to the caller.  One relaxed atomic load when no
  // injector is installed.
  static bool Shim(FaultOp op, int fd, size_t* len);

 private:
  mutable std::mutex mu_;
  std::mt19937 rng_;
  std::vector<FaultRule> rules_;  // skip/count mutated in place as they fire
  Stats stats_;
};

}  // namespace gscope

#endif  // GSCOPE_NET_FAULT_INJECTOR_H_
