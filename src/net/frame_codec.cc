#include "net/frame_codec.h"

#include <climits>

namespace gscope {
namespace wire {
namespace {

// Slicing-by-8 CRC32C tables, generated at compile time (reflected
// Castagnoli polynomial 0x82F63B78).
struct CrcTables {
  uint32_t t[8][256];
};

constexpr CrcTables MakeTables() {
  CrcTables tb{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ (0x82F63B78u & (0u - (crc & 1u)));
    }
    tb.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    for (int k = 1; k < 8; ++k) {
      tb.t[k][i] = (tb.t[k - 1][i] >> 8) ^ tb.t[0][tb.t[k - 1][i] & 0xFFu];
    }
  }
  return tb;
}

constexpr CrcTables kCrc = MakeTables();

uint32_t Crc32cSw(uint32_t crc, const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = ~crc;
  while (len >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = kCrc.t[7][lo & 0xFFu] ^ kCrc.t[6][(lo >> 8) & 0xFFu] ^
        kCrc.t[5][(lo >> 16) & 0xFFu] ^ kCrc.t[4][lo >> 24] ^
        kCrc.t[3][hi & 0xFFu] ^ kCrc.t[2][(hi >> 8) & 0xFFu] ^
        kCrc.t[1][(hi >> 16) & 0xFFu] ^ kCrc.t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    c = (c >> 8) ^ kCrc.t[0][(c ^ *p++) & 0xFFu];
  }
  return ~c;
}

#if defined(__x86_64__)
[[gnu::target("sse4.2")]]
uint32_t Crc32cHw(uint32_t crc, const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t c = ~crc;
  while (len >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    c = __builtin_ia32_crc32di(c, v);
    p += 8;
    len -= 8;
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  while (len >= 4) {
    uint32_t v;
    std::memcpy(&v, p, 4);
    c32 = __builtin_ia32_crc32si(c32, v);
    p += 4;
    len -= 4;
  }
  while (len-- > 0) {
    c32 = __builtin_ia32_crc32qi(c32, *p++);
  }
  return ~c32;
}
#endif

}  // namespace

uint32_t Crc32c(uint32_t crc, const void* data, size_t len) {
#if defined(__x86_64__)
  static const bool hw = __builtin_cpu_supports("sse4.2") != 0;
  if (hw) {
    return Crc32cHw(crc, data, len);
  }
#endif
  return Crc32cSw(crc, data, len);
}

StageResult WireEncoder::AddSlow(std::string_view name, int64_t time_ms,
                                 double value) {
  if (name.size() > kMaxNameBytes) {
    return StageResult::kRejected;
  }
  if (!has_base_) {
    base_time_ms_ = time_ms;
    has_base_ = true;
  }
  int64_t delta = time_ms - base_time_ms_;
  if ((delta < INT32_MIN || delta > INT32_MAX) && staged_ != 0) {
    return StageResult::kFrameFull;  // seal; the next frame rebases
  }
  uint32_t id = 0;
  bool declare = false;
  size_t add_bytes = kSampleRecordBytes;
  if (!name.empty()) {
    // Producers send long runs of one signal; a last-name memo turns the
    // steady state into one memcmp instead of a hash-map probe.
    if (memo_id_ != 0 && name == memo_name_) {
      id = memo_id_;
    } else {
      auto it = ids_.find(name);
      if (it == ids_.end()) {
        if (next_id_ > kMaxDictId) {
          // Id space exhausted: restart the dictionary.  Safe only between
          // frames (a mid-frame restart could bind one id to two names in
          // the same dict section), and sound at all because every frame
          // declares its own bindings - the server just rebinds.
          if (staged_ != 0) {
            return StageResult::kFrameFull;
          }
          ids_.clear();
          declared_epoch_.clear();
          next_id_ = 1;
          memo_id_ = 0;
        }
        it = ids_.emplace(std::string(name), next_id_++).first;
        declared_epoch_.push_back(0);
      }
      id = it->second;
      memo_name_.assign(name.data(), name.size());  // capacity reused after warmup
      memo_id_ = id;
    }
    declare = declared_epoch_[id - 1] != frame_epoch_;
    if (declare) {
      add_bytes += kDictRecordBytes + name.size();
    }
  }
  if (4 + dict_buf_.size() + rec_buf_.size() + add_bytes > kMaxPayloadBytes &&
      staged_ != 0) {
    return StageResult::kFrameFull;
  }
  if (declare) {
    AppendU32(dict_buf_, id);
    AppendU32(dict_buf_, static_cast<uint32_t>(name.size()));
    dict_buf_.append(name.data(), name.size());
    dict_count_ += 1;
    declared_epoch_[id - 1] = frame_epoch_;
  }
  char rec[kSampleRecordBytes];
  const int32_t delta32 = static_cast<int32_t>(delta);
  std::memcpy(rec, &id, sizeof(id));
  std::memcpy(rec + 4, &delta32, sizeof(delta32));
  std::memcpy(rec + 8, &value, sizeof(value));
  rec_buf_.append(rec, sizeof(rec));
  staged_ += 1;
  return StageResult::kStaged;
}

size_t WireEncoder::EmitFrame(std::string& out) {
  if (staged_ == 0) {
    return 0;
  }
  char cnt[4];
  std::memcpy(cnt, &dict_count_, sizeof(cnt));
  uint32_t crc = Crc32c(0, cnt, sizeof(cnt));
  crc = Crc32c(crc, dict_buf_.data(), dict_buf_.size());
  crc = Crc32c(crc, rec_buf_.data(), rec_buf_.size());
  uint32_t payload_len =
      static_cast<uint32_t>(4 + dict_buf_.size() + rec_buf_.size());
  out.push_back(static_cast<char>(kMagic0));
  out.push_back(static_cast<char>(kMagic1));
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(kFrameSamples));
  AppendU32(out, payload_len);
  AppendU32(out, crc);
  AppendI64(out, base_time_ms_);
  out.append(cnt, sizeof(cnt));
  out += dict_buf_;
  out += rec_buf_;
  size_t n = staged_;
  dict_buf_.clear();
  rec_buf_.clear();
  dict_count_ = 0;
  staged_ = 0;
  has_base_ = false;
  frame_epoch_ += 1;
  if (frame_epoch_ == 0) {  // wrap: stale declared marks could falsely match
    declared_epoch_.assign(declared_epoch_.size(), 0);
    frame_epoch_ = 1;
  }
  return n;
}

size_t WireEncoder::ClearStaged() {
  size_t n = staged_;
  dict_buf_.clear();
  rec_buf_.clear();
  dict_count_ = 0;
  staged_ = 0;
  has_base_ = false;
  frame_epoch_ += 1;
  if (frame_epoch_ == 0) {
    declared_epoch_.assign(declared_epoch_.size(), 0);
    frame_epoch_ = 1;
  }
  return n;
}

void WireEncoder::ResetDict() {
  ClearStaged();
  ids_.clear();
  declared_epoch_.clear();
  next_id_ = 1;
  memo_id_ = 0;
}

void WireEncoder::EmitTextFrame(std::string& out, std::string_view text) {
  out.push_back(static_cast<char>(kMagic0));
  out.push_back(static_cast<char>(kMagic1));
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(kFrameText));
  AppendU32(out, static_cast<uint32_t>(text.size()));
  AppendU32(out, Crc32c(0, text.data(), text.size()));
  AppendI64(out, 0);
  out.append(text.data(), text.size());
}

void WireEncoder::EmitTextLineFrame(std::string& out, std::string_view line) {
  const char nl = '\n';
  uint32_t crc = Crc32c(0, line.data(), line.size());
  crc = Crc32c(crc, &nl, 1);
  out.push_back(static_cast<char>(kMagic0));
  out.push_back(static_cast<char>(kMagic1));
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(kFrameText));
  AppendU32(out, static_cast<uint32_t>(line.size() + 1));
  AppendU32(out, crc);
  AppendI64(out, 0);
  out.append(line.data(), line.size());
  out.push_back(nl);
}

}  // namespace wire
}  // namespace gscope
