// Client side of the remote scope control channel (docs/protocol.md).
//
// A display target uses this to attach to a gscope StreamServer over the
// wire instead of a process-local AddScope call: it subscribes to signal
// names by glob (SUB/UNSUB), sets its server-side late-drop delay (DELAY),
// and receives the matched tuples streamed back down the same connection.
// Incoming lines are demultiplexed by first byte: letters are control
// replies (OK / ERR / INFO), everything else parses as a tuple line.
//
// The channel is bidirectional: Send() pushes tuples upstream on the same
// connection, so one process can both produce signals and subscribe to
// others' (or, for a loopback check, its own).
//
// Single-threaded and I/O driven, like StreamClient; the same non-blocking
// connect discipline (completion via first writability + SO_ERROR) and the
// same bounded whole-frame egress backlog apply.
#ifndef GSCOPE_NET_CONTROL_CLIENT_H_
#define GSCOPE_NET_CONTROL_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/tuple.h"
#include "net/frame_codec.h"
#include "net/line_framer.h"
#include "net/socket.h"
#include "net/stream_client.h"  // ConnectState
#include "runtime/event_loop.h"
#include "runtime/framed_writer.h"

namespace gscope {

struct ControlClientOptions {
  // Outgoing (commands + pushed tuples) backlog cap; whole frames only on
  // overflow, victim selected by `overflow_policy`.
  size_t max_buffer = 1 << 20;
  // Longest accepted incoming line (tuple or reply).
  size_t max_line_bytes = 4096;
  // Overload behaviour for the outgoing backlog (see runtime/framed_writer.h):
  // drop the newest frame (default), evict the oldest whole frames, or wait
  // up to block_deadline_ms per commit before falling back to drop-newest.
  OverflowPolicy overflow_policy = OverflowPolicy::kDropNewest;
  int64_t block_deadline_ms = 5;
  // SO_SNDBUF for the connection, 0 = kernel default.  Small values move
  // backpressure out of kernel buffering into the bounded backlog above,
  // where the overflow policy (and its counters) can see it.
  int sndbuf_bytes = 0;
  // Session resumption: the client remembers its subscription pattern set
  // and delay, and replays them (SUB per pattern, then DELAY) on every
  // connect establishment — a server restart or flaky link costs only the
  // in-flight tuples, not the subscription state.  The replay reflects the
  // remembered state at establishment time (an Unsubscribe issued while the
  // handshake is in flight is honored, not overridden); verbs queued during
  // the handshake ride their own frames and are not replayed twice.
  bool auto_resubscribe = true;
  // Automatic reconnect (see net/stream_client.h).  With auto_resubscribe
  // this closes the self-healing loop: lost link -> backoff -> reconnect ->
  // session replayed, no caller involvement.
  ReconnectOptions reconnect;
  // Adaptive overflow handling for the outgoing backlog.
  FramedWriter::AdaptiveOptions adaptive;
  // Liveness (docs/protocol.md, PING/PONG): with ping_interval_ms > 0 the
  // client PINGs whenever the link has been send-idle that long; with
  // idle_timeout_ms > 0 a link that delivered nothing for that long is
  // declared dead (liveness_timeouts) and torn down — reconnect, when
  // enabled, takes over.  Pair them (interval well under the timeout): the
  // pings provoke the PONG traffic that proves liveness.
  int64_t ping_interval_ms = 0;
  int64_t idle_timeout_ms = 0;
  // Issue a TIME request on every establishment, so time_offset_ms() is
  // populated without a manual RequestTime().
  bool sync_time_on_connect = false;
  // Wire format (docs/protocol.md "Binary wire protocol").  kBinary sends
  // HELLO BIN 1 on every establishment - BEFORE the session replay, so a
  // reconnect renegotiates automatically - and, once acknowledged, both
  // directions switch to length-prefixed frames: pushed tuples batch into
  // sample frames, verbs/replies ride text frames, and echoed tuples arrive
  // as decoded sample batches.  Declined or unanswered HELLOs leave the
  // connection in text, so the option is safe against any server.
  WireFormat wire_format = WireFormat::kText;
  // Binary only: samples staged per pushed frame before sealing (anything
  // staged still flushes at the end of the loop iteration).
  size_t frame_samples = 128;
};

class ControlClient {
 public:
  struct Stats {
    int64_t commands_sent = 0;
    int64_t tuples_pushed = 0;
    int64_t frames_dropped = 0;  // outgoing backlog overflow (whole frames)
    // Frames committed but later discarded: evicted by kDropOldest, or
    // abandoned unsent at disconnect/close (see StreamClient::Stats).
    int64_t frames_evicted = 0;
    int64_t frames_abandoned = 0;
    int64_t bytes_sent = 0;  // bytes the kernel accepted (drains are async)
    int64_t bytes_dropped = 0;
    int64_t block_time_ns = 0;
    int64_t backlog_high_water = 0;
    int64_t tuples_received = 0;
    int64_t replies_ok = 0;
    int64_t replies_err = 0;
    int64_t replies_info = 0;
    int64_t parse_errors = 0;
    int64_t bytes_received = 0;
    int64_t connect_failures = 0;
    // SUB/DELAY commands replayed by session resumption (auto_resubscribe);
    // also counted in commands_sent.
    int64_t resumed_commands = 0;
    int64_t connect_attempts = 0;   // every TCP connect started (incl. retries)
    int64_t reconnects = 0;         // successful re-establishments after the first
    int64_t pings_sent = 0;
    int64_t pongs_received = 0;
    int64_t notices = 0;            // NOTICE lines (server degradation events)
    int64_t liveness_timeouts = 0;  // links declared dead by idle_timeout_ms
    int64_t time_syncs = 0;         // completed TIME round-trips
    int64_t policy_switches = 0;    // adaptive overflow-policy transitions
  };

  using TupleFn = std::function<void(const TupleView& tuple)>;
  using ReplyFn = std::function<void(std::string_view line)>;
  using ConnectFn = std::function<void(bool ok, int error)>;
  using StateFn = std::function<void(ConnectState state)>;

  explicit ControlClient(MainLoop* loop, ControlClientOptions options = {});
  ~ControlClient();

  ControlClient(const ControlClient&) = delete;
  ControlClient& operator=(const ControlClient&) = delete;

  // Starts a non-blocking connect to 127.0.0.1:`port`; the outcome arrives
  // through the connect callback / state().  Commands issued while the
  // connect is in flight are queued and flushed on establishment.
  bool Connect(uint16_t port);
  void Close();

  ConnectState state() const { return state_; }
  bool connected() const { return state_ == ConnectState::kConnected; }
  int last_error() const { return last_error_; }

  // Control verbs; each returns false if the frame could not be queued
  // (disconnected or backlog full).  Replies arrive asynchronously through
  // the reply callback.  Subscribe/Unsubscribe/SetDelay also update the
  // remembered session state (even while disconnected — declared intent is
  // replayed at the next establishment when auto_resubscribe is on).
  bool Subscribe(std::string_view glob);
  bool Unsubscribe(std::string_view glob);
  bool SetDelay(int64_t delay_ms);
  // Establishes a tenant identity (`AUTH <token>`).  The token is remembered
  // and replayed on every re-establishment BEFORE the subscription replay,
  // so resumed SUBs land inside the tenant namespace; a rejected token
  // (`ERR AUTH ...`) leaves the session anonymous but otherwise usable.
  bool Auth(std::string_view token);
  // Attaches (or replaces) the session's server-side processing stage;
  // `spec` is the verbatim stage verb line - "COALESCE", "DECIMATE 10",
  // "EWMA 0.2", "ENVELOPE 100", "SPECTRUM 256 hann" (docs/protocol.md,
  // "Derived-signal pipelines").  Remembered and replayed on reconnect
  // AFTER the SUB/DELAY replay, so the replayed stage keys against the
  // restored subscription set.
  bool Stage(std::string_view spec);
  // Detaches the stage (sends RAW) and stops replaying it.
  bool ClearStage();
  bool RequestList();
  // Asks for the server's stage catalog (`OK STAGES <n> ACTIVE <m>` plus
  // one INFO STAGE line per spec grammar).
  bool RequestStages();
  // Asks for the server's counter line (`OK STATS key value ...`); the
  // reply arrives through the reply callback like any OK line.
  bool RequestStats();
  // Flight recorder (docs/protocol.md "Flight recorder").  Record starts a
  // server-side capture into an extent log at `path` (server filesystem;
  // anonymous sessions only); StopRecord seals and stops it.  Replay
  // streams recorded window [t0, t1] back through this session's filter -
  // speed <= 0 bursts the whole window, speed > 0 paces recorded time at
  // that multiple of real time.  Not remembered for reconnect: a replay is
  // a one-shot query, not session state.
  bool Record(std::string_view path);
  bool StopRecord();
  bool Replay(int64_t t0, int64_t t1, double speed = 0.0);
  // Sends one PING (token = local ms clock); the PONG echo feeds
  // pongs_received / last_rtt_ms().  The liveness timer calls this
  // automatically when ping_interval_ms is set.
  bool Ping();
  // Asks for the server's scope time (`OK TIME <ms>`).  When the reply
  // lands, time_offset_ms() maps the local ms clock onto the server's scope
  // clock (RTT/2 midpoint estimate), so stamps can be made honest across
  // hosts without synchronized clocks.
  bool RequestTime();

  bool has_time_offset() const { return has_time_offset_; }
  // server_scope_time_ms ~= local_clock_ms + time_offset_ms().
  int64_t time_offset_ms() const { return time_offset_ms_; }
  // The server's scope time right now, per the last TIME sync (0 before
  // any sync completed).
  int64_t ServerNowMs() const;
  // RTT of the last completed PING or TIME round-trip, ms (-1 before any).
  int64_t last_rtt_ms() const { return last_rtt_ms_; }
  // The delay the most recent backoff armed (ms).
  int64_t last_backoff_ms() const { return last_backoff_ms_; }

  // The remembered subscription state that a reconnect would replay.
  const std::vector<std::string>& remembered_patterns() const { return sub_patterns_; }
  bool has_remembered_delay() const { return has_delay_; }
  int64_t remembered_delay_ms() const { return delay_ms_; }
  bool has_remembered_auth() const { return has_auth_; }
  bool has_remembered_stage() const { return has_stage_; }
  const std::string& remembered_stage() const { return stage_spec_; }
  // Drops the remembered state (nothing replayed until re-declared).
  void ForgetSession();

  // Pushes one tuple upstream on the same connection.
  bool Send(int64_t time_ms, double value, std::string_view name);

  // Switches the outgoing backlog's overflow policy mid-stream.
  void SetQueuePolicy(OverflowPolicy policy, int64_t block_deadline_ms = 5) {
    writer_.SetPolicy(policy, MillisToNanos(block_deadline_ms));
  }
  OverflowPolicy queue_policy() const { return writer_.policy(); }

  // Re-caps the outgoing backlog (live) and the kernel send buffer (next
  // Connect; 0 leaves the kernel default).
  void SetQueueLimit(size_t max_buffer, int sndbuf_bytes = 0) {
    writer_.SetMaxBuffer(max_buffer);
    options_.max_buffer = max_buffer;
    options_.sndbuf_bytes = sndbuf_bytes;
  }

  // Unsent bytes currently queued toward the server (binary: staged-but-
  // unsealed samples included).
  size_t pending_bytes() const { return writer_.pending_bytes() + encoder_.staged_bytes(); }
  // True once HELLO BIN was acknowledged on the current connection.
  bool wire_binary() const { return wire_ == WireState::kBinary; }

  // Received matched tuples.  The view borrows the read buffer: copy what
  // must outlive the callback.
  void SetTupleCallback(TupleFn fn) { on_tuple_ = std::move(fn); }
  // OK / ERR / INFO / PONG / NOTICE lines, verbatim.
  void SetReplyCallback(ReplyFn fn) { on_reply_ = std::move(fn); }
  void SetConnectCallback(ConnectFn fn) { on_connect_ = std::move(fn); }
  // Every state transition, including those inside reconnect cycles; tests
  // observe kConnected/kBackoff edges here instead of sleeping.
  void SetStateCallback(StateFn fn) { on_state_ = std::move(fn); }

  const Stats& stats() const {
    // Writer-side counters are folded in lazily: drains happen async.
    const FramedWriter::Stats& w = writer_.stats();
    stats_.frames_evicted = w.frames_evicted;
    // Pre-connect discards are already in frames_dropped (see Close /
    // OnConnectReady); they never counted as sent, so they are backed out
    // of the abandoned mapping.
    stats_.frames_abandoned = w.frames_abandoned - preconnect_discards_;
    stats_.bytes_sent = w.bytes_written;
    stats_.bytes_dropped = w.bytes_dropped;
    stats_.block_time_ns = w.block_time_ns;
    stats_.backlog_high_water = static_cast<int64_t>(w.high_water_bytes);
    stats_.policy_switches = w.policy_switches;
    return stats_;
  }

 private:
  // Wire negotiation state (ControlClientOptions::wire_format == kBinary).
  // One state covers both directions: the server's "OK HELLO BIN 1" line is
  // the exact point where its egress turns framed, so rx flips mid-chunk on
  // that line and tx flips with it.
  enum class WireState : uint8_t { kTextOnly, kHelloSent, kBinary };

  struct RxHandler;  // decoder callbacks -> HandleLine / tuple delivery

  bool StartConnect();
  bool OnConnectReady();
  bool OnReadable(IoCondition cond);
  void HandleLine(std::string_view line);
  bool SendCommand(std::string_view verb, std::string_view arg);
  // Seals staged pushed samples into one wire frame in the output backlog.
  void FlushWire();
  void ScheduleWireFlush();
  void DropStagedWire();
  // Installs one rx dictionary binding / delivers one decoded sample batch.
  void BindRxName(uint32_t id, std::string_view name);
  void DeliverRecords(int64_t base_time_ms, const char* records, size_t n);
  // Tears the live connection down, then enters backoff (reconnect enabled)
  // or settles in kDisconnected.
  void Disconnect();
  bool FailAttempt(int error);
  void EnterBackoff();
  void SetState(ConnectState state);
  bool OnLivenessTick();
  int64_t LocalNowMs() const;

  MainLoop* loop_;
  ControlClientOptions options_;
  Socket socket_;
  FramedWriter writer_;
  LineFramer framer_;
  SourceId connect_watch_ = 0;
  SourceId read_watch_ = 0;
  SourceId retry_timer_ = 0;
  SourceId liveness_timer_ = 0;
  ConnectState state_ = ConnectState::kDisconnected;
  int last_error_ = 0;
  uint16_t port_ = 0;
  int64_t cur_backoff_ms_ = 0;
  int64_t last_backoff_ms_ = 0;
  int failed_attempts_ = 0;  // consecutive, since the last establishment
  int64_t establishments_ = 0;
  std::mt19937 jitter_rng_;
  Nanos last_rx_ns_ = 0;  // last byte received (liveness idle tracking)
  Nanos last_tx_ns_ = 0;  // last frame committed (ping pacing)
  int64_t time_req_sent_ms_ = -1;  // local ms when the pending TIME left
  bool has_time_offset_ = false;
  int64_t time_offset_ms_ = 0;
  int64_t last_rtt_ms_ = -1;
  // Frames committed while kConnecting; folded into frames_dropped if the
  // handshake fails (they never left the process).
  int64_t preconnect_frames_ = 0;
  // Writer-side abandonments that were pre-connect discards (already in
  // frames_dropped); subtracted in stats().
  int64_t preconnect_discards_ = 0;
  // Remembered session state (survives Close/Disconnect by design).
  // Establishment replays the CURRENT remembered state so verbs issued
  // while the handshake is in flight are never overridden by a stale
  // snapshot; the handshake_* trackers mark what already rides the queued
  // frames (flushed first by Attach) so the replay does not duplicate it.
  std::vector<std::string> sub_patterns_;
  bool has_delay_ = false;
  int64_t delay_ms_ = 0;
  bool has_auth_ = false;
  std::string auth_token_;
  bool has_stage_ = false;
  std::string stage_spec_;
  std::vector<std::string> handshake_subs_;
  bool handshake_delay_ = false;
  bool handshake_auth_ = false;
  bool handshake_stage_ = false;
  TupleFn on_tuple_;
  ReplyFn on_reply_;
  ConnectFn on_connect_;
  StateFn on_state_;
  mutable Stats stats_;
  // Binary wire state.
  WireState wire_ = WireState::kTextOnly;
  wire::WireEncoder encoder_;
  wire::FrameDecoder decoder_;
  std::vector<std::string> rx_names_;  // echo dictionary, by id - 1
  bool wire_flush_pending_ = false;
  // Liveness token for the deferred flush closure (declared LAST: destroyed
  // first, so a queued flush never touches a dead client).
  std::shared_ptr<ControlClient> self_alias_{this, [](ControlClient*) {}};
};

}  // namespace gscope

#endif  // GSCOPE_NET_CONTROL_CLIENT_H_
