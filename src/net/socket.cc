#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "net/fault_injector.h"

namespace gscope {
namespace {

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Socket::Release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

bool Socket::SetReusePort() {
#ifdef SO_REUSEPORT
  int one = 1;
  return valid() && setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) == 0;
#else
  return false;
#endif
}

bool Socket::ReusePortSupported() {
  // Probed once: create a throwaway socket and try the option.  A platform
  // that defines SO_REUSEPORT may still refuse it (old kernels, seccomp).
  static const bool supported = []() {
    int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      return false;
    }
    Socket probe{fd};
    return probe.SetReusePort();
  }();
  return supported;
}

Socket Socket::Listen(uint16_t port, uint16_t* bound_port, bool reuse_port) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Socket{};
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port) {
    Socket holder{fd};
    if (!holder.SetReusePort()) {
      return Socket{};  // caller probed; failure here means fall back
    }
    holder.Release();
  }
  sockaddr_in addr = LoopbackAddr(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 16) != 0 || !SetNonBlocking(fd)) {
    close(fd);
    return Socket{};
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
      *bound_port = ntohs(actual.sin_port);
    }
  }
  return Socket{fd};
}

Socket Socket::Connect(uint16_t port) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Socket{};
  }
  if (!SetNonBlocking(fd)) {
    close(fd);
    return Socket{};
  }
  sockaddr_in addr = LoopbackAddr(port);
  int rc;
  if (FaultInjector::Shim(FaultOp::kConnect, fd, nullptr)) {
    rc = -1;
  } else {
    rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  }
  // EINTR on a non-blocking connect means the attempt continues
  // asynchronously (POSIX); retrying connect() here would yield EALREADY.
  // Treat it exactly like EINPROGRESS: resolve via writability + SO_ERROR.
  if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
    close(fd);
    return Socket{};
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket{fd};
}

bool Socket::SetSendBufferBytes(int bytes) {
  return valid() && bytes > 0 &&
         setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes)) == 0;
}

bool Socket::SetRecvBufferBytes(int bytes) {
  return valid() && bytes > 0 &&
         setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes)) == 0;
}

int Socket::PendingError() const {
  if (!valid()) {
    return EBADF;
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    return errno;
  }
  return err;
}

Socket Socket::Accept() {
  if (!valid()) {
    return Socket{};
  }
  int fd;
  while (true) {
    if (FaultInjector::Shim(FaultOp::kAccept, fd_, nullptr)) {
      if (errno == EINTR) {
        continue;
      }
      return Socket{};
    }
    fd = accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      break;
    }
    // EINTR: interrupted before a connection was taken - retry.
    // ECONNABORTED: the queued peer already gave up; take the next pending
    // connection instead of reporting "none pending" to the accept loop.
    if (errno == EINTR || errno == ECONNABORTED) {
      continue;
    }
    return Socket{};
  }
  if (!SetNonBlocking(fd)) {
    close(fd);
    return Socket{};
  }
  return Socket{fd};
}

Socket Socket::BindDatagram(uint16_t port, uint16_t* bound_port, bool reuse_port) {
  int fd = socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Socket{};
  }
  if (reuse_port) {
    Socket holder{fd};
    if (!holder.SetReusePort()) {
      return Socket{};
    }
    holder.Release();
  }
  sockaddr_in addr = LoopbackAddr(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 || !SetNonBlocking(fd)) {
    close(fd);
    return Socket{};
  }
#ifdef SO_RXQ_OVFL
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_RXQ_OVFL, &one, sizeof(one));
#endif
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
      *bound_port = ntohs(actual.sin_port);
    }
  }
  return Socket{fd};
}

Socket Socket::ConnectDatagram(uint16_t port) {
  int fd = socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Socket{};
  }
  sockaddr_in addr = LoopbackAddr(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      !SetNonBlocking(fd)) {
    close(fd);
    return Socket{};
  }
  return Socket{fd};
}

Socket::DatagramResult Socket::ReadDatagram(void* buf, size_t len) {
  DatagramResult result;
  if (!valid()) {
    return result;
  }
  iovec iov{buf, len};
  alignas(cmsghdr) char control[64];
  msghdr msg{};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = control;
  msg.msg_controllen = sizeof(control);
  ssize_t n;
  while (true) {
    size_t eff_len = len;
    if (FaultInjector::Shim(FaultOp::kRecvDatagram, fd_, &eff_len)) {
      n = -1;
    } else {
      iov.iov_len = eff_len;  // a clamped length surfaces as MSG_TRUNC
      n = recvmsg(fd_, &msg, 0);
    }
    if (n >= 0 || errno != EINTR) {
      break;
    }
  }
  if (n < 0) {
    result.status = (errno == EAGAIN || errno == EWOULDBLOCK) ? IoResult::Status::kWouldBlock
                                                              : IoResult::Status::kError;
    return result;
  }
  result.status = IoResult::Status::kOk;
  result.bytes = static_cast<size_t>(n);
  result.truncated = (msg.msg_flags & MSG_TRUNC) != 0;
#ifdef SO_RXQ_OVFL
  for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr; cmsg = CMSG_NXTHDR(&msg, cmsg)) {
    if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SO_RXQ_OVFL) {
      uint32_t drops = 0;
      std::memcpy(&drops, CMSG_DATA(cmsg), sizeof(drops));
      result.kernel_drops = drops;
      result.has_kernel_drops = true;
    }
  }
#endif
  return result;
}

IoResult Socket::Read(void* buf, size_t len) {
  if (!valid()) {
    return IoResult{IoResult::Status::kError, 0};
  }
  while (true) {
    size_t eff_len = len;
    ssize_t n;
    if (FaultInjector::Shim(FaultOp::kRead, fd_, &eff_len)) {
      n = -1;
    } else {
      n = read(fd_, buf, eff_len);
    }
    if (n > 0) {
      return IoResult{IoResult::Status::kOk, static_cast<size_t>(n)};
    }
    if (n == 0) {
      return IoResult{IoResult::Status::kEof, 0};
    }
    if (errno == EINTR) {
      // Interrupted before any data arrived: retry - a signal must not be
      // observable as an I/O error on the monitoring channel.
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoResult{IoResult::Status::kWouldBlock, 0};
    }
    return IoResult{IoResult::Status::kError, 0};
  }
}

IoResult Socket::Write(const void* buf, size_t len) {
  if (!valid()) {
    return IoResult{IoResult::Status::kError, 0};
  }
  while (true) {
    size_t eff_len = len;
    ssize_t n;
    if (FaultInjector::Shim(FaultOp::kWrite, fd_, &eff_len)) {
      n = -1;
    } else {
      // MSG_NOSIGNAL: a reset peer yields EPIPE (kError) instead of a
      // process-killing SIGPIPE.
      n = send(fd_, buf, eff_len, MSG_NOSIGNAL);
      if (n < 0 && errno == ENOTSOCK) {
        n = write(fd_, buf, eff_len);
      }
    }
    if (n >= 0) {
      return IoResult{IoResult::Status::kOk, static_cast<size_t>(n)};
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoResult{IoResult::Status::kWouldBlock, 0};
    }
    return IoResult{IoResult::Status::kError, 0};
  }
}

}  // namespace gscope
