#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace gscope {
namespace {

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Socket::Release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Socket Socket::Listen(uint16_t port, uint16_t* bound_port) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Socket{};
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 16) != 0 || !SetNonBlocking(fd)) {
    close(fd);
    return Socket{};
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
      *bound_port = ntohs(actual.sin_port);
    }
  }
  return Socket{fd};
}

Socket Socket::Connect(uint16_t port) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Socket{};
  }
  if (!SetNonBlocking(fd)) {
    close(fd);
    return Socket{};
  }
  sockaddr_in addr = LoopbackAddr(port);
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    close(fd);
    return Socket{};
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket{fd};
}

Socket Socket::Accept() {
  if (!valid()) {
    return Socket{};
  }
  int fd = accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    return Socket{};
  }
  if (!SetNonBlocking(fd)) {
    close(fd);
    return Socket{};
  }
  return Socket{fd};
}

IoResult Socket::Read(void* buf, size_t len) {
  if (!valid()) {
    return IoResult{IoResult::Status::kError, 0};
  }
  ssize_t n = read(fd_, buf, len);
  if (n > 0) {
    return IoResult{IoResult::Status::kOk, static_cast<size_t>(n)};
  }
  if (n == 0) {
    return IoResult{IoResult::Status::kEof, 0};
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK) {
    return IoResult{IoResult::Status::kWouldBlock, 0};
  }
  return IoResult{IoResult::Status::kError, 0};
}

IoResult Socket::Write(const void* buf, size_t len) {
  if (!valid()) {
    return IoResult{IoResult::Status::kError, 0};
  }
  ssize_t n = write(fd_, buf, len);
  if (n >= 0) {
    return IoResult{IoResult::Status::kOk, static_cast<size_t>(n)};
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK) {
    return IoResult{IoResult::Status::kWouldBlock, 0};
  }
  return IoResult{IoResult::Status::kError, 0};
}

}  // namespace gscope
