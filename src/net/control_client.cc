#include "net/control_client.h"

#include <algorithm>
#include <charconv>

namespace gscope {

namespace {

// Parses a non-negative integer argument after `prefix` ("PONG 123",
// "OK TIME 456").  Returns false when absent or malformed.
bool ParseIntArg(std::string_view line, std::string_view prefix, int64_t* out) {
  if (line.size() <= prefix.size() || line.rfind(prefix, 0) != 0 ||
      line[prefix.size()] != ' ') {
    return false;
  }
  std::string_view arg = line.substr(prefix.size() + 1);
  auto [p, ec] = std::from_chars(arg.data(), arg.data() + arg.size(), *out);
  return ec == std::errc{} && p == arg.data() + arg.size();
}

}  // namespace

ControlClient::ControlClient(MainLoop* loop, ControlClientOptions options)
    : loop_(loop),
      options_(options),
      writer_(loop, options.max_buffer),
      framer_(options.max_line_bytes),
      jitter_rng_(options.reconnect.seed) {
  writer_.SetPolicy(options.overflow_policy, MillisToNanos(options.block_deadline_ms));
  writer_.SetAdaptive(options.adaptive);
  writer_.SetErrorCallback([this]() { Disconnect(); });
}

ControlClient::~ControlClient() {
  self_alias_.reset();  // invalidate deferred flush closures before teardown
  Close();
}

// Decoder callbacks for the server's framed egress.
struct ControlClient::RxHandler {
  ControlClient* client;
  void OnDictEntry(uint32_t id, std::string_view name) {
    client->BindRxName(id, name);
  }
  void OnSampleBatch(int64_t base_time_ms, const char* records, size_t n) {
    client->DeliverRecords(base_time_ms, records, n);
  }
  void OnTextLine(std::string_view line) { client->HandleLine(line); }
};

int64_t ControlClient::LocalNowMs() const {
  return loop_->clock()->NowNs() / kNanosPerMilli;
}

void ControlClient::SetState(ConnectState state) {
  if (state_ == state) {
    return;
  }
  state_ = state;
  if (on_state_) {
    on_state_(state);
  }
}

bool ControlClient::Connect(uint16_t port) {
  Close();
  port_ = port;
  cur_backoff_ms_ = std::max<int64_t>(1, options_.reconnect.initial_backoff_ms);
  failed_attempts_ = 0;
  return StartConnect();
}

bool ControlClient::StartConnect() {
  // Track what is declared during THIS handshake: those verbs ride the
  // queued frames (flushed at establishment) and must not be replayed.
  handshake_subs_.clear();
  handshake_delay_ = false;
  handshake_auth_ = false;
  handshake_stage_ = false;
  stats_.connect_attempts += 1;
  socket_ = Socket::Connect(port_);
  if (!socket_.valid()) {
    return FailAttempt(0);
  }
  if (options_.sndbuf_bytes > 0) {
    socket_.SetSendBufferBytes(options_.sndbuf_bytes);
  }
  SetState(ConnectState::kConnecting);
  connect_watch_ =
      loop_->AddIoWatch(socket_.fd(), IoCondition::kOut | IoCondition::kErr,
                        [this](int, IoCondition) { return OnConnectReady(); });
  if (connect_watch_ == 0) {
    socket_.Close();
    return FailAttempt(0);
  }
  return true;
}

void ControlClient::Close() {
  if (connect_watch_ != 0) {
    loop_->Remove(connect_watch_);
    connect_watch_ = 0;
  }
  if (read_watch_ != 0) {
    loop_->Remove(read_watch_);
    read_watch_ = 0;
  }
  if (retry_timer_ != 0) {
    loop_->Remove(retry_timer_);
    retry_timer_ = 0;
  }
  if (liveness_timer_ != 0) {
    loop_->Remove(liveness_timer_);
    liveness_timer_ = 0;
  }
  size_t discarded = writer_.Reset();
  if (state_ == ConnectState::kConnecting) {
    // Frames queued behind an unresolved handshake resolve to dropped (they
    // never counted as pushed/sent); back the Reset()-side abandonment out
    // so the delivered identity keeps holding.
    stats_.frames_dropped += static_cast<int64_t>(discarded);
    preconnect_discards_ += static_cast<int64_t>(discarded);
  }
  DropStagedWire();
  framer_.Reset();
  decoder_.Reset();
  rx_names_.clear();
  wire_ = WireState::kTextOnly;
  socket_.Close();
  SetState(ConnectState::kDisconnected);
  preconnect_frames_ = 0;
  time_req_sent_ms_ = -1;
}

bool ControlClient::FailAttempt(int error) {
  last_error_ = error;
  stats_.connect_failures += 1;
  failed_attempts_ += 1;
  const ReconnectOptions& r = options_.reconnect;
  if (r.enabled && (r.max_attempts == 0 || failed_attempts_ < r.max_attempts)) {
    EnterBackoff();
    return true;
  }
  SetState(ConnectState::kFailed);
  return false;
}

void ControlClient::EnterBackoff() {
  int64_t delay = cur_backoff_ms_;
  if (options_.reconnect.jitter_frac > 0) {
    std::uniform_real_distribution<double> jitter(0.0, options_.reconnect.jitter_frac);
    delay += static_cast<int64_t>(jitter(jitter_rng_) * static_cast<double>(cur_backoff_ms_));
  }
  delay = std::max<int64_t>(1, delay);
  last_backoff_ms_ = delay;
  cur_backoff_ms_ = std::min<int64_t>(
      std::max<int64_t>(1, options_.reconnect.max_backoff_ms),
      static_cast<int64_t>(static_cast<double>(cur_backoff_ms_) *
                           std::max(1.0, options_.reconnect.multiplier)));
  retry_timer_ = loop_->AddTimeoutMs(delay, std::function<bool()>([this]() {
                                       retry_timer_ = 0;
                                       StartConnect();
                                       return false;
                                     }));
  // Announce the state only after the delay is armed and published:
  // observers of the kBackoff edge read a consistent last_backoff_ms().
  SetState(ConnectState::kBackoff);
}

bool ControlClient::OnConnectReady() {
  connect_watch_ = 0;
  int error = socket_.PendingError();
  if (error != 0) {
    // Frames queued behind the handshake never left the process: they
    // resolve to dropped, so commands_sent/tuples_pushed vs frames_dropped
    // reconcile for the caller; the Reset()-side abandonment is backed out
    // of the stats mapping to avoid double-booking the loss.
    stats_.frames_dropped += preconnect_frames_;
    preconnect_frames_ = 0;
    preconnect_discards_ += static_cast<int64_t>(writer_.Reset());
    socket_.Close();
    FailAttempt(error);
    if (on_connect_) {
      on_connect_(false, error);
    }
    return false;
  }
  SetState(ConnectState::kConnected);
  failed_attempts_ = 0;
  cur_backoff_ms_ = std::max<int64_t>(1, options_.reconnect.initial_backoff_ms);
  establishments_ += 1;
  if (establishments_ > 1) {
    stats_.reconnects += 1;
  }
  preconnect_frames_ = 0;
  last_rx_ns_ = loop_->clock()->NowNs();
  last_tx_ns_ = last_rx_ns_;
  writer_.Attach(socket_.fd());  // flushes commands queued pre-connect
  read_watch_ = loop_->AddIoWatch(socket_.fd(), IoCondition::kIn,
                                  [this](int, IoCondition cond) { return OnReadable(cond); });
  if (options_.wire_format == WireFormat::kBinary) {
    // Renegotiate on EVERY establishment, ahead of the session replay (the
    // SUBs that follow still travel as text; the server parses text until
    // our first binary frame).  Counted in commands_sent like any verb, but
    // never in resumed_commands - it is negotiation, not session state.
    wire_ = WireState::kHelloSent;
    decoder_.Reset();
    rx_names_.clear();
    encoder_.ResetDict();
    SendCommand("HELLO", "BIN 1");
  } else {
    wire_ = WireState::kTextOnly;
  }
  if (options_.auto_resubscribe) {
    // Session resumption: replay the CURRENT remembered state (so an
    // Unsubscribe/SetDelay issued mid-handshake is never overridden by a
    // stale snapshot), skipping verbs already queued during this handshake
    // — Attach() just flushed those, and a duplicate SUB would draw an ERR.
    // SendCommand (not Subscribe) so nothing re-records.  AUTH goes first:
    // the server scopes the session's filter at SUB time from the tenant
    // identity, so replayed SUBs must land inside the namespace.
    if (has_auth_ && !handshake_auth_) {
      if (SendCommand("AUTH", auth_token_)) {
        stats_.resumed_commands += 1;
      }
    }
    for (const std::string& pattern : sub_patterns_) {
      if (std::find(handshake_subs_.begin(), handshake_subs_.end(), pattern) !=
          handshake_subs_.end()) {
        continue;
      }
      if (SendCommand("SUB", pattern)) {
        stats_.resumed_commands += 1;
      }
    }
    if (has_delay_ && !handshake_delay_) {
      char buf[24];
      auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), delay_ms_);
      (void)ec;
      if (SendCommand("DELAY", std::string_view(buf, static_cast<size_t>(p - buf)))) {
        stats_.resumed_commands += 1;
      }
    }
    if (has_stage_ && !handshake_stage_) {
      // The stage replays LAST: the server keys stage groups on the
      // session's (namespace, delay, pattern set), all restored above.
      std::string_view spec = stage_spec_;
      size_t space = spec.find(' ');
      std::string_view verb = spec.substr(0, space);
      std::string_view spec_arg =
          space == std::string_view::npos ? std::string_view{} : spec.substr(space + 1);
      if (SendCommand(verb, spec_arg)) {
        stats_.resumed_commands += 1;
      }
    }
  }
  if (options_.sync_time_on_connect) {
    RequestTime();
  }
  if (options_.ping_interval_ms > 0 || options_.idle_timeout_ms > 0) {
    int64_t period = 0;
    if (options_.ping_interval_ms > 0) {
      period = options_.ping_interval_ms;
    }
    if (options_.idle_timeout_ms > 0) {
      // Check often enough that a dead link is declared within ~1.25x the
      // configured timeout even without pings.
      int64_t check = std::max<int64_t>(1, options_.idle_timeout_ms / 4);
      period = period == 0 ? check : std::min(period, check);
    }
    liveness_timer_ = loop_->AddTimeoutMs(
        period, std::function<bool()>([this]() { return OnLivenessTick(); }));
  }
  if (on_connect_) {
    on_connect_(true, 0);
  }
  return false;  // one-shot
}

bool ControlClient::OnLivenessTick() {
  if (state_ != ConnectState::kConnected) {
    return true;  // mid-teardown tick; Disconnect removes this timer
  }
  Nanos now = loop_->clock()->NowNs();
  if (options_.idle_timeout_ms > 0 &&
      now - last_rx_ns_ >= MillisToNanos(options_.idle_timeout_ms)) {
    // Nothing received for the whole window (pings included, when enabled):
    // the peer is gone even if TCP has not noticed.  Tear down; reconnect
    // takes over when enabled.
    stats_.liveness_timeouts += 1;
    liveness_timer_ = 0;  // self-removal via return false below
    Disconnect();
    return false;
  }
  if (options_.ping_interval_ms > 0 &&
      now - last_tx_ns_ >= MillisToNanos(options_.ping_interval_ms)) {
    Ping();
  }
  return true;
}

void ControlClient::Disconnect() {
  if (read_watch_ != 0) {
    loop_->Remove(read_watch_);
    read_watch_ = 0;
  }
  if (liveness_timer_ != 0) {
    loop_->Remove(liveness_timer_);
    liveness_timer_ = 0;
  }
  DropStagedWire();
  writer_.Reset();
  framer_.Reset();
  decoder_.Reset();
  rx_names_.clear();
  wire_ = WireState::kTextOnly;
  socket_.Close();
  time_req_sent_ms_ = -1;
  const ReconnectOptions& r = options_.reconnect;
  if (r.enabled && port_ != 0 &&
      (r.max_attempts == 0 || failed_attempts_ < r.max_attempts)) {
    EnterBackoff();
    return;
  }
  SetState(ConnectState::kDisconnected);
}

bool ControlClient::OnReadable(IoCondition cond) {
  if (Has(cond, IoCondition::kErr)) {
    read_watch_ = 0;
    Disconnect();
    return false;
  }
  char buf[65536];
  while (true) {
    IoResult r = socket_.Read(buf, sizeof(buf));
    if (r.status == IoResult::Status::kOk) {
      stats_.bytes_received += static_cast<int64_t>(r.bytes);
      last_rx_ns_ = loop_->clock()->NowNs();
      const char* p = buf;
      size_t n = r.bytes;
      while (n > 0) {
        if (wire_ == WireState::kBinary) {
          RxHandler handler{this};
          decoder_.Consume(p, n, handler);
          stats_.parse_errors += decoder_.Take().crc_errors;
          n = 0;
          break;
        }
        // The "OK HELLO BIN 1" line is the exact flip point: everything the
        // server sends after it is framed, so the line parser must stop
        // there and hand the chunk's remainder to the decoder.
        size_t used = framer_.ConsumeStoppable(
            p, n, &stats_.parse_errors, [this](std::string_view line) {
              WireState before = wire_;
              HandleLine(line);
              return wire_ == before;
            });
        p += used;
        n -= used;
      }
      continue;
    }
    if (r.status == IoResult::Status::kWouldBlock) {
      return true;
    }
    if (wire_ == WireState::kBinary) {
      decoder_.Finish();  // a torn partially-buffered frame counts once
      stats_.parse_errors += decoder_.Take().crc_errors;
    } else {
      framer_.FlushTail([this](std::string_view line) { HandleLine(line); });
    }
    read_watch_ = 0;  // returning false removes this watch
    Disconnect();
    return false;
  }
}

void ControlClient::BindRxName(uint32_t id, std::string_view name) {
  if (rx_names_.size() < id) {
    rx_names_.resize(id);
  }
  rx_names_[id - 1].assign(name);
}

void ControlClient::DeliverRecords(int64_t base_time_ms, const char* records,
                                   size_t n) {
  for (size_t i = 0; i < n; ++i, records += wire::kSampleRecordBytes) {
    uint32_t id = wire::LoadU32(records);
    int64_t time_ms = base_time_ms + wire::LoadI32(records + 4);
    double value = wire::LoadF64(records + 8);
    std::string_view name;
    if (id != 0) {
      if (id > rx_names_.size()) {
        stats_.parse_errors += 1;  // frame did not declare the id
        continue;
      }
      name = rx_names_[id - 1];
    }
    stats_.tuples_received += 1;
    if (on_tuple_) {
      on_tuple_(TupleView{time_ms, value, name});
    }
  }
}

void ControlClient::HandleLine(std::string_view line) {
  if (!line.empty() && line.back() == '\r') {
    line.remove_suffix(1);
  }
  if (line.empty()) {
    return;
  }
  char c = line.front();
  if ((c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z')) {
    if (line.rfind("OK", 0) == 0) {
      stats_.replies_ok += 1;
      if (wire_ == WireState::kHelloSent && line.rfind("OK HELLO BIN 1", 0) == 0) {
        wire_ = WireState::kBinary;  // both directions framed from here
      }
      int64_t server_ms = 0;
      if (time_req_sent_ms_ >= 0 && ParseIntArg(line, "OK TIME", &server_ms)) {
        // Midpoint estimate: the server stamped its scope time somewhere in
        // the round trip; assume halfway.  Good to ~RTT/2, which on the
        // links gscope targets is far finer than the late-drop delay.
        int64_t now = LocalNowMs();
        int64_t rtt = now - time_req_sent_ms_;
        last_rtt_ms_ = rtt;
        time_offset_ms_ = server_ms + rtt / 2 - now;
        has_time_offset_ = true;
        stats_.time_syncs += 1;
        time_req_sent_ms_ = -1;
      }
    } else if (line.rfind("ERR", 0) == 0) {
      stats_.replies_err += 1;
      if (wire_ == WireState::kHelloSent && line.rfind("ERR HELLO", 0) == 0) {
        wire_ = WireState::kTextOnly;  // declined: text for good
      }
    } else if (line.rfind("INFO", 0) == 0) {
      stats_.replies_info += 1;
    } else if (line.rfind("PONG", 0) == 0) {
      stats_.pongs_received += 1;
      int64_t token = 0;
      if (ParseIntArg(line, "PONG", &token)) {
        last_rtt_ms_ = LocalNowMs() - token;  // token = our clock at send
      }
    } else if (line.rfind("NOTICE", 0) == 0) {
      stats_.notices += 1;
    } else {
      stats_.parse_errors += 1;
      return;
    }
    if (on_reply_) {
      on_reply_(line);
    }
    return;
  }
  std::optional<TupleView> tuple = ParseTupleView(line);
  if (!tuple.has_value()) {
    if (!IsIgnorableLine(line)) {
      stats_.parse_errors += 1;
    }
    return;
  }
  stats_.tuples_received += 1;
  if (on_tuple_) {
    on_tuple_(*tuple);
  }
}

bool ControlClient::SendCommand(std::string_view verb, std::string_view arg) {
  if (state_ != ConnectState::kConnected && state_ != ConnectState::kConnecting) {
    stats_.frames_dropped += 1;
    return false;
  }
  if (wire_ == WireState::kBinary && !encoder_.empty()) {
    FlushWire();  // staged pushed tuples precede the verb on the wire
  }
  std::string& buf = writer_.BeginFrame();
  if (wire_ == WireState::kBinary) {
    size_t mark = buf.size();
    buf.append(verb);
    if (!arg.empty()) {
      buf.push_back(' ');
      buf.append(arg);
    }
    std::string_view line(buf.data() + mark, buf.size() - mark);
    std::string text(line);  // verbs are cold-path; one scratch copy is fine
    buf.resize(mark);
    wire::WireEncoder::EmitTextLineFrame(buf, text);
  } else {
    buf.append(verb);
    if (!arg.empty()) {
      buf.push_back(' ');
      buf.append(arg);
    }
    buf.push_back('\n');
  }
  if (!writer_.CommitFrame()) {
    stats_.frames_dropped += 1;
    return false;
  }
  if (state_ == ConnectState::kConnecting) {
    preconnect_frames_ += 1;
  }
  stats_.commands_sent += 1;
  last_tx_ns_ = loop_->clock()->NowNs();
  return true;
}

bool ControlClient::Subscribe(std::string_view glob) {
  // Remember the pattern even when the send fails (e.g. disconnected):
  // declared intent is what a reconnect replays.
  if (std::find(sub_patterns_.begin(), sub_patterns_.end(), glob) == sub_patterns_.end()) {
    sub_patterns_.emplace_back(glob);
  }
  bool sent = SendCommand("SUB", glob);
  if (sent && state_ == ConnectState::kConnecting) {
    handshake_subs_.emplace_back(glob);  // already queued; replay must skip it
  }
  return sent;
}

bool ControlClient::Auth(std::string_view token) {
  // Like Subscribe: remember the declared identity even when the send fails,
  // so the next establishment replays it (ahead of the SUB replay - tenant
  // scoping must exist before subscriptions re-land).
  has_auth_ = true;
  auth_token_.assign(token.data(), token.size());
  bool sent = SendCommand("AUTH", token);
  if (sent && state_ == ConnectState::kConnecting) {
    handshake_auth_ = true;  // the queued AUTH frame already carries it
  }
  return sent;
}

bool ControlClient::Unsubscribe(std::string_view glob) {
  auto it = std::find(sub_patterns_.begin(), sub_patterns_.end(), glob);
  if (it != sub_patterns_.end()) {
    sub_patterns_.erase(it);
  }
  return SendCommand("UNSUB", glob);
}

bool ControlClient::SetDelay(int64_t delay_ms) {
  if (delay_ms >= 0) {
    has_delay_ = true;
    delay_ms_ = delay_ms;
  }
  char buf[24];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), delay_ms);
  (void)ec;
  bool sent = SendCommand("DELAY", std::string_view(buf, static_cast<size_t>(p - buf)));
  if (sent && delay_ms >= 0 && state_ == ConnectState::kConnecting) {
    handshake_delay_ = true;  // the queued DELAY frame already carries it
  }
  return sent;
}

bool ControlClient::Stage(std::string_view spec) {
  // Like Subscribe: remember the declared stage even when the send fails,
  // so the next establishment replays it (after the SUB/DELAY replay - the
  // server keys shared stages on the restored subscription set).
  has_stage_ = true;
  stage_spec_.assign(spec.data(), spec.size());
  size_t space = spec.find(' ');
  std::string_view verb = spec.substr(0, space);
  std::string_view arg =
      space == std::string_view::npos ? std::string_view{} : spec.substr(space + 1);
  bool sent = SendCommand(verb, arg);
  if (sent && state_ == ConnectState::kConnecting) {
    handshake_stage_ = true;  // the queued frame already carries it
  }
  return sent;
}

bool ControlClient::ClearStage() {
  has_stage_ = false;
  stage_spec_.clear();
  handshake_stage_ = false;
  return SendCommand("RAW", {});
}

bool ControlClient::RequestList() { return SendCommand("LIST", {}); }

bool ControlClient::RequestStages() { return SendCommand("LIST", "STAGES"); }

bool ControlClient::RequestStats() { return SendCommand("STATS", {}); }

bool ControlClient::Record(std::string_view path) {
  if (path.empty()) {
    return false;
  }
  return SendCommand("RECORD", path);
}

bool ControlClient::StopRecord() { return SendCommand("RECORD", "OFF"); }

bool ControlClient::Replay(int64_t t0, int64_t t1, double speed) {
  std::string arg;
  arg.append(std::to_string(t0)).push_back(' ');
  arg.append(std::to_string(t1));
  if (speed > 0.0) {
    char buf[32];
    auto r = std::to_chars(buf, buf + sizeof(buf), speed);
    arg.push_back(' ');
    arg.append(buf, static_cast<size_t>(r.ptr - buf));
  }
  return SendCommand("REPLAY", arg);
}

bool ControlClient::Ping() {
  char buf[24];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), LocalNowMs());
  (void)ec;
  bool sent = SendCommand("PING", std::string_view(buf, static_cast<size_t>(p - buf)));
  if (sent) {
    stats_.pings_sent += 1;
  }
  return sent;
}

bool ControlClient::RequestTime() {
  bool sent = SendCommand("TIME", {});
  if (sent) {
    time_req_sent_ms_ = LocalNowMs();
  }
  return sent;
}

int64_t ControlClient::ServerNowMs() const {
  if (!has_time_offset_) {
    return 0;
  }
  return LocalNowMs() + time_offset_ms_;
}

void ControlClient::ForgetSession() {
  sub_patterns_.clear();
  handshake_subs_.clear();
  has_delay_ = false;
  handshake_delay_ = false;
  has_auth_ = false;
  auth_token_.clear();
  handshake_auth_ = false;
  has_stage_ = false;
  stage_spec_.clear();
  handshake_stage_ = false;
}

bool ControlClient::Send(int64_t time_ms, double value, std::string_view name) {
  if (state_ != ConnectState::kConnected && state_ != ConnectState::kConnecting) {
    stats_.frames_dropped += 1;
    return false;
  }
  if (wire_ == WireState::kBinary) {
    // Stage into the open sample frame; commit/accounting happens at the
    // flush (inline at a frame's worth, else deferred one loop iteration).
    wire::StageResult r = encoder_.Add(name, time_ms, value);
    if (r == wire::StageResult::kFrameFull) {
      FlushWire();
      r = encoder_.Add(name, time_ms, value);
    }
    if (r != wire::StageResult::kStaged) {
      stats_.frames_dropped += 1;
      return false;
    }
    if (encoder_.staged_samples() >= options_.frame_samples) {
      FlushWire();
    } else {
      ScheduleWireFlush();
    }
    last_tx_ns_ = loop_->clock()->NowNs();
    return true;
  }
  AppendTuple(writer_.BeginFrame(), time_ms, value, name);
  if (!writer_.CommitFrame()) {
    stats_.frames_dropped += 1;
    return false;
  }
  if (state_ == ConnectState::kConnecting) {
    preconnect_frames_ += 1;
  }
  stats_.tuples_pushed += 1;
  last_tx_ns_ = loop_->clock()->NowNs();
  return true;
}

void ControlClient::FlushWire() {
  size_t n = encoder_.staged_samples();
  if (n == 0) {
    return;
  }
  if (state_ != ConnectState::kConnected || wire_ != WireState::kBinary) {
    DropStagedWire();  // the connection died between staging and the flush
    return;
  }
  std::string& buf = writer_.BeginFrame();
  encoder_.EmitFrame(buf);
  if (!writer_.CommitFrame(static_cast<uint32_t>(n))) {
    stats_.frames_dropped += 1;
    return;
  }
  stats_.tuples_pushed += static_cast<int64_t>(n);
}

void ControlClient::ScheduleWireFlush() {
  if (wire_flush_pending_) {
    return;
  }
  wire_flush_pending_ = true;
  std::weak_ptr<ControlClient> weak_self = self_alias_;
  loop_->Invoke([weak_self]() {
    if (std::shared_ptr<ControlClient> client = weak_self.lock()) {
      client->wire_flush_pending_ = false;
      client->FlushWire();
    }
  });
}

void ControlClient::DropStagedWire() {
  if (encoder_.ClearStaged() > 0) {
    stats_.frames_dropped += 1;  // the open frame's worth of pushed tuples
  }
}

}  // namespace gscope
