#include "net/control_client.h"

#include <algorithm>
#include <charconv>

namespace gscope {

namespace {

// Parses a non-negative integer argument after `prefix` ("PONG 123",
// "OK TIME 456").  Returns false when absent or malformed.
bool ParseIntArg(std::string_view line, std::string_view prefix, int64_t* out) {
  if (line.size() <= prefix.size() || line.rfind(prefix, 0) != 0 ||
      line[prefix.size()] != ' ') {
    return false;
  }
  std::string_view arg = line.substr(prefix.size() + 1);
  auto [p, ec] = std::from_chars(arg.data(), arg.data() + arg.size(), *out);
  return ec == std::errc{} && p == arg.data() + arg.size();
}

}  // namespace

ControlClient::ControlClient(MainLoop* loop, ControlClientOptions options)
    : loop_(loop),
      options_(options),
      writer_(loop, options.max_buffer),
      framer_(options.max_line_bytes),
      jitter_rng_(options.reconnect.seed) {
  writer_.SetPolicy(options.overflow_policy, MillisToNanos(options.block_deadline_ms));
  writer_.SetAdaptive(options.adaptive);
  writer_.SetErrorCallback([this]() { Disconnect(); });
}

ControlClient::~ControlClient() { Close(); }

int64_t ControlClient::LocalNowMs() const {
  return loop_->clock()->NowNs() / kNanosPerMilli;
}

void ControlClient::SetState(ConnectState state) {
  if (state_ == state) {
    return;
  }
  state_ = state;
  if (on_state_) {
    on_state_(state);
  }
}

bool ControlClient::Connect(uint16_t port) {
  Close();
  port_ = port;
  cur_backoff_ms_ = std::max<int64_t>(1, options_.reconnect.initial_backoff_ms);
  failed_attempts_ = 0;
  return StartConnect();
}

bool ControlClient::StartConnect() {
  // Track what is declared during THIS handshake: those verbs ride the
  // queued frames (flushed at establishment) and must not be replayed.
  handshake_subs_.clear();
  handshake_delay_ = false;
  stats_.connect_attempts += 1;
  socket_ = Socket::Connect(port_);
  if (!socket_.valid()) {
    return FailAttempt(0);
  }
  if (options_.sndbuf_bytes > 0) {
    socket_.SetSendBufferBytes(options_.sndbuf_bytes);
  }
  SetState(ConnectState::kConnecting);
  connect_watch_ =
      loop_->AddIoWatch(socket_.fd(), IoCondition::kOut | IoCondition::kErr,
                        [this](int, IoCondition) { return OnConnectReady(); });
  if (connect_watch_ == 0) {
    socket_.Close();
    return FailAttempt(0);
  }
  return true;
}

void ControlClient::Close() {
  if (connect_watch_ != 0) {
    loop_->Remove(connect_watch_);
    connect_watch_ = 0;
  }
  if (read_watch_ != 0) {
    loop_->Remove(read_watch_);
    read_watch_ = 0;
  }
  if (retry_timer_ != 0) {
    loop_->Remove(retry_timer_);
    retry_timer_ = 0;
  }
  if (liveness_timer_ != 0) {
    loop_->Remove(liveness_timer_);
    liveness_timer_ = 0;
  }
  size_t discarded = writer_.Reset();
  if (state_ == ConnectState::kConnecting) {
    // Frames queued behind an unresolved handshake resolve to dropped (they
    // never counted as pushed/sent); back the Reset()-side abandonment out
    // so the delivered identity keeps holding.
    stats_.frames_dropped += static_cast<int64_t>(discarded);
    preconnect_discards_ += static_cast<int64_t>(discarded);
  }
  framer_.Reset();
  socket_.Close();
  SetState(ConnectState::kDisconnected);
  preconnect_frames_ = 0;
  time_req_sent_ms_ = -1;
}

bool ControlClient::FailAttempt(int error) {
  last_error_ = error;
  stats_.connect_failures += 1;
  failed_attempts_ += 1;
  const ReconnectOptions& r = options_.reconnect;
  if (r.enabled && (r.max_attempts == 0 || failed_attempts_ < r.max_attempts)) {
    EnterBackoff();
    return true;
  }
  SetState(ConnectState::kFailed);
  return false;
}

void ControlClient::EnterBackoff() {
  int64_t delay = cur_backoff_ms_;
  if (options_.reconnect.jitter_frac > 0) {
    std::uniform_real_distribution<double> jitter(0.0, options_.reconnect.jitter_frac);
    delay += static_cast<int64_t>(jitter(jitter_rng_) * static_cast<double>(cur_backoff_ms_));
  }
  delay = std::max<int64_t>(1, delay);
  last_backoff_ms_ = delay;
  cur_backoff_ms_ = std::min<int64_t>(
      std::max<int64_t>(1, options_.reconnect.max_backoff_ms),
      static_cast<int64_t>(static_cast<double>(cur_backoff_ms_) *
                           std::max(1.0, options_.reconnect.multiplier)));
  retry_timer_ = loop_->AddTimeoutMs(delay, std::function<bool()>([this]() {
                                       retry_timer_ = 0;
                                       StartConnect();
                                       return false;
                                     }));
  // Announce the state only after the delay is armed and published:
  // observers of the kBackoff edge read a consistent last_backoff_ms().
  SetState(ConnectState::kBackoff);
}

bool ControlClient::OnConnectReady() {
  connect_watch_ = 0;
  int error = socket_.PendingError();
  if (error != 0) {
    // Frames queued behind the handshake never left the process: they
    // resolve to dropped, so commands_sent/tuples_pushed vs frames_dropped
    // reconcile for the caller; the Reset()-side abandonment is backed out
    // of the stats mapping to avoid double-booking the loss.
    stats_.frames_dropped += preconnect_frames_;
    preconnect_frames_ = 0;
    preconnect_discards_ += static_cast<int64_t>(writer_.Reset());
    socket_.Close();
    FailAttempt(error);
    if (on_connect_) {
      on_connect_(false, error);
    }
    return false;
  }
  SetState(ConnectState::kConnected);
  failed_attempts_ = 0;
  cur_backoff_ms_ = std::max<int64_t>(1, options_.reconnect.initial_backoff_ms);
  establishments_ += 1;
  if (establishments_ > 1) {
    stats_.reconnects += 1;
  }
  preconnect_frames_ = 0;
  last_rx_ns_ = loop_->clock()->NowNs();
  last_tx_ns_ = last_rx_ns_;
  writer_.Attach(socket_.fd());  // flushes commands queued pre-connect
  read_watch_ = loop_->AddIoWatch(socket_.fd(), IoCondition::kIn,
                                  [this](int, IoCondition cond) { return OnReadable(cond); });
  if (options_.auto_resubscribe) {
    // Session resumption: replay the CURRENT remembered state (so an
    // Unsubscribe/SetDelay issued mid-handshake is never overridden by a
    // stale snapshot), skipping verbs already queued during this handshake
    // — Attach() just flushed those, and a duplicate SUB would draw an ERR.
    // SendCommand (not Subscribe) so nothing re-records.
    for (const std::string& pattern : sub_patterns_) {
      if (std::find(handshake_subs_.begin(), handshake_subs_.end(), pattern) !=
          handshake_subs_.end()) {
        continue;
      }
      if (SendCommand("SUB", pattern)) {
        stats_.resumed_commands += 1;
      }
    }
    if (has_delay_ && !handshake_delay_) {
      char buf[24];
      auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), delay_ms_);
      (void)ec;
      if (SendCommand("DELAY", std::string_view(buf, static_cast<size_t>(p - buf)))) {
        stats_.resumed_commands += 1;
      }
    }
  }
  if (options_.sync_time_on_connect) {
    RequestTime();
  }
  if (options_.ping_interval_ms > 0 || options_.idle_timeout_ms > 0) {
    int64_t period = 0;
    if (options_.ping_interval_ms > 0) {
      period = options_.ping_interval_ms;
    }
    if (options_.idle_timeout_ms > 0) {
      // Check often enough that a dead link is declared within ~1.25x the
      // configured timeout even without pings.
      int64_t check = std::max<int64_t>(1, options_.idle_timeout_ms / 4);
      period = period == 0 ? check : std::min(period, check);
    }
    liveness_timer_ = loop_->AddTimeoutMs(
        period, std::function<bool()>([this]() { return OnLivenessTick(); }));
  }
  if (on_connect_) {
    on_connect_(true, 0);
  }
  return false;  // one-shot
}

bool ControlClient::OnLivenessTick() {
  if (state_ != ConnectState::kConnected) {
    return true;  // mid-teardown tick; Disconnect removes this timer
  }
  Nanos now = loop_->clock()->NowNs();
  if (options_.idle_timeout_ms > 0 &&
      now - last_rx_ns_ >= MillisToNanos(options_.idle_timeout_ms)) {
    // Nothing received for the whole window (pings included, when enabled):
    // the peer is gone even if TCP has not noticed.  Tear down; reconnect
    // takes over when enabled.
    stats_.liveness_timeouts += 1;
    liveness_timer_ = 0;  // self-removal via return false below
    Disconnect();
    return false;
  }
  if (options_.ping_interval_ms > 0 &&
      now - last_tx_ns_ >= MillisToNanos(options_.ping_interval_ms)) {
    Ping();
  }
  return true;
}

void ControlClient::Disconnect() {
  if (read_watch_ != 0) {
    loop_->Remove(read_watch_);
    read_watch_ = 0;
  }
  if (liveness_timer_ != 0) {
    loop_->Remove(liveness_timer_);
    liveness_timer_ = 0;
  }
  writer_.Reset();
  framer_.Reset();
  socket_.Close();
  time_req_sent_ms_ = -1;
  const ReconnectOptions& r = options_.reconnect;
  if (r.enabled && port_ != 0 &&
      (r.max_attempts == 0 || failed_attempts_ < r.max_attempts)) {
    EnterBackoff();
    return;
  }
  SetState(ConnectState::kDisconnected);
}

bool ControlClient::OnReadable(IoCondition cond) {
  if (Has(cond, IoCondition::kErr)) {
    read_watch_ = 0;
    Disconnect();
    return false;
  }
  char buf[65536];
  while (true) {
    IoResult r = socket_.Read(buf, sizeof(buf));
    if (r.status == IoResult::Status::kOk) {
      stats_.bytes_received += static_cast<int64_t>(r.bytes);
      last_rx_ns_ = loop_->clock()->NowNs();
      framer_.Consume(buf, r.bytes, &stats_.parse_errors,
                      [this](std::string_view line) { HandleLine(line); });
      continue;
    }
    if (r.status == IoResult::Status::kWouldBlock) {
      return true;
    }
    framer_.FlushTail([this](std::string_view line) { HandleLine(line); });
    read_watch_ = 0;  // returning false removes this watch
    Disconnect();
    return false;
  }
}

void ControlClient::HandleLine(std::string_view line) {
  if (!line.empty() && line.back() == '\r') {
    line.remove_suffix(1);
  }
  if (line.empty()) {
    return;
  }
  char c = line.front();
  if ((c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z')) {
    if (line.rfind("OK", 0) == 0) {
      stats_.replies_ok += 1;
      int64_t server_ms = 0;
      if (time_req_sent_ms_ >= 0 && ParseIntArg(line, "OK TIME", &server_ms)) {
        // Midpoint estimate: the server stamped its scope time somewhere in
        // the round trip; assume halfway.  Good to ~RTT/2, which on the
        // links gscope targets is far finer than the late-drop delay.
        int64_t now = LocalNowMs();
        int64_t rtt = now - time_req_sent_ms_;
        last_rtt_ms_ = rtt;
        time_offset_ms_ = server_ms + rtt / 2 - now;
        has_time_offset_ = true;
        stats_.time_syncs += 1;
        time_req_sent_ms_ = -1;
      }
    } else if (line.rfind("ERR", 0) == 0) {
      stats_.replies_err += 1;
    } else if (line.rfind("INFO", 0) == 0) {
      stats_.replies_info += 1;
    } else if (line.rfind("PONG", 0) == 0) {
      stats_.pongs_received += 1;
      int64_t token = 0;
      if (ParseIntArg(line, "PONG", &token)) {
        last_rtt_ms_ = LocalNowMs() - token;  // token = our clock at send
      }
    } else if (line.rfind("NOTICE", 0) == 0) {
      stats_.notices += 1;
    } else {
      stats_.parse_errors += 1;
      return;
    }
    if (on_reply_) {
      on_reply_(line);
    }
    return;
  }
  std::optional<TupleView> tuple = ParseTupleView(line);
  if (!tuple.has_value()) {
    if (!IsIgnorableLine(line)) {
      stats_.parse_errors += 1;
    }
    return;
  }
  stats_.tuples_received += 1;
  if (on_tuple_) {
    on_tuple_(*tuple);
  }
}

bool ControlClient::SendCommand(std::string_view verb, std::string_view arg) {
  if (state_ != ConnectState::kConnected && state_ != ConnectState::kConnecting) {
    stats_.frames_dropped += 1;
    return false;
  }
  std::string& buf = writer_.BeginFrame();
  buf.append(verb);
  if (!arg.empty()) {
    buf.push_back(' ');
    buf.append(arg);
  }
  buf.push_back('\n');
  if (!writer_.CommitFrame()) {
    stats_.frames_dropped += 1;
    return false;
  }
  if (state_ == ConnectState::kConnecting) {
    preconnect_frames_ += 1;
  }
  stats_.commands_sent += 1;
  last_tx_ns_ = loop_->clock()->NowNs();
  return true;
}

bool ControlClient::Subscribe(std::string_view glob) {
  // Remember the pattern even when the send fails (e.g. disconnected):
  // declared intent is what a reconnect replays.
  if (std::find(sub_patterns_.begin(), sub_patterns_.end(), glob) == sub_patterns_.end()) {
    sub_patterns_.emplace_back(glob);
  }
  bool sent = SendCommand("SUB", glob);
  if (sent && state_ == ConnectState::kConnecting) {
    handshake_subs_.emplace_back(glob);  // already queued; replay must skip it
  }
  return sent;
}

bool ControlClient::Unsubscribe(std::string_view glob) {
  auto it = std::find(sub_patterns_.begin(), sub_patterns_.end(), glob);
  if (it != sub_patterns_.end()) {
    sub_patterns_.erase(it);
  }
  return SendCommand("UNSUB", glob);
}

bool ControlClient::SetDelay(int64_t delay_ms) {
  if (delay_ms >= 0) {
    has_delay_ = true;
    delay_ms_ = delay_ms;
  }
  char buf[24];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), delay_ms);
  (void)ec;
  bool sent = SendCommand("DELAY", std::string_view(buf, static_cast<size_t>(p - buf)));
  if (sent && delay_ms >= 0 && state_ == ConnectState::kConnecting) {
    handshake_delay_ = true;  // the queued DELAY frame already carries it
  }
  return sent;
}

bool ControlClient::RequestList() { return SendCommand("LIST", {}); }

bool ControlClient::RequestStats() { return SendCommand("STATS", {}); }

bool ControlClient::Ping() {
  char buf[24];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), LocalNowMs());
  (void)ec;
  bool sent = SendCommand("PING", std::string_view(buf, static_cast<size_t>(p - buf)));
  if (sent) {
    stats_.pings_sent += 1;
  }
  return sent;
}

bool ControlClient::RequestTime() {
  bool sent = SendCommand("TIME", {});
  if (sent) {
    time_req_sent_ms_ = LocalNowMs();
  }
  return sent;
}

int64_t ControlClient::ServerNowMs() const {
  if (!has_time_offset_) {
    return 0;
  }
  return LocalNowMs() + time_offset_ms_;
}

void ControlClient::ForgetSession() {
  sub_patterns_.clear();
  handshake_subs_.clear();
  has_delay_ = false;
  handshake_delay_ = false;
}

bool ControlClient::Send(int64_t time_ms, double value, std::string_view name) {
  if (state_ != ConnectState::kConnected && state_ != ConnectState::kConnecting) {
    stats_.frames_dropped += 1;
    return false;
  }
  AppendTuple(writer_.BeginFrame(), time_ms, value, name);
  if (!writer_.CommitFrame()) {
    stats_.frames_dropped += 1;
    return false;
  }
  if (state_ == ConnectState::kConnecting) {
    preconnect_frames_ += 1;
  }
  stats_.tuples_pushed += 1;
  last_tx_ns_ = loop_->clock()->NowNs();
  return true;
}

}  // namespace gscope
