#include "net/control_client.h"

#include <algorithm>
#include <charconv>

namespace gscope {

ControlClient::ControlClient(MainLoop* loop, ControlClientOptions options)
    : loop_(loop),
      options_(options),
      writer_(loop, options.max_buffer),
      framer_(options.max_line_bytes) {
  writer_.SetPolicy(options.overflow_policy, MillisToNanos(options.block_deadline_ms));
  writer_.SetErrorCallback([this]() { Disconnect(); });
}

ControlClient::~ControlClient() { Close(); }

bool ControlClient::Connect(uint16_t port) {
  Close();
  // Track what is declared during THIS handshake: those verbs ride the
  // queued frames (flushed at establishment) and must not be replayed.
  handshake_subs_.clear();
  handshake_delay_ = false;
  socket_ = Socket::Connect(port);
  if (!socket_.valid()) {
    state_ = ConnectState::kFailed;
    stats_.connect_failures += 1;
    return false;
  }
  if (options_.sndbuf_bytes > 0) {
    socket_.SetSendBufferBytes(options_.sndbuf_bytes);
  }
  state_ = ConnectState::kConnecting;
  connect_watch_ =
      loop_->AddIoWatch(socket_.fd(), IoCondition::kOut | IoCondition::kErr,
                        [this](int, IoCondition) { return OnConnectReady(); });
  if (connect_watch_ == 0) {
    socket_.Close();
    state_ = ConnectState::kFailed;
    stats_.connect_failures += 1;
    return false;
  }
  return true;
}

void ControlClient::Close() {
  if (connect_watch_ != 0) {
    loop_->Remove(connect_watch_);
    connect_watch_ = 0;
  }
  if (read_watch_ != 0) {
    loop_->Remove(read_watch_);
    read_watch_ = 0;
  }
  size_t discarded = writer_.Reset();
  if (state_ == ConnectState::kConnecting) {
    // Frames queued behind an unresolved handshake resolve to dropped (they
    // never counted as pushed/sent); back the Reset()-side abandonment out
    // so the delivered identity keeps holding.
    stats_.frames_dropped += static_cast<int64_t>(discarded);
    preconnect_discards_ += static_cast<int64_t>(discarded);
  }
  framer_.Reset();
  socket_.Close();
  state_ = ConnectState::kDisconnected;
  preconnect_frames_ = 0;
}

bool ControlClient::OnConnectReady() {
  connect_watch_ = 0;
  int error = socket_.PendingError();
  if (error != 0) {
    last_error_ = error;
    state_ = ConnectState::kFailed;
    stats_.connect_failures += 1;
    // Frames queued behind the handshake never left the process: they
    // resolve to dropped, so commands_sent/tuples_pushed vs frames_dropped
    // reconcile for the caller; the Reset()-side abandonment is backed out
    // of the stats mapping to avoid double-booking the loss.
    stats_.frames_dropped += preconnect_frames_;
    preconnect_frames_ = 0;
    preconnect_discards_ += static_cast<int64_t>(writer_.Reset());
    socket_.Close();
    if (on_connect_) {
      on_connect_(false, error);
    }
    return false;
  }
  state_ = ConnectState::kConnected;
  preconnect_frames_ = 0;
  writer_.Attach(socket_.fd());  // flushes commands queued pre-connect
  read_watch_ = loop_->AddIoWatch(socket_.fd(), IoCondition::kIn,
                                  [this](int, IoCondition cond) { return OnReadable(cond); });
  if (options_.auto_resubscribe) {
    // Session resumption: replay the CURRENT remembered state (so an
    // Unsubscribe/SetDelay issued mid-handshake is never overridden by a
    // stale snapshot), skipping verbs already queued during this handshake
    // — Attach() just flushed those, and a duplicate SUB would draw an ERR.
    // SendCommand (not Subscribe) so nothing re-records.
    for (const std::string& pattern : sub_patterns_) {
      if (std::find(handshake_subs_.begin(), handshake_subs_.end(), pattern) !=
          handshake_subs_.end()) {
        continue;
      }
      if (SendCommand("SUB", pattern)) {
        stats_.resumed_commands += 1;
      }
    }
    if (has_delay_ && !handshake_delay_) {
      char buf[24];
      auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), delay_ms_);
      (void)ec;
      if (SendCommand("DELAY", std::string_view(buf, static_cast<size_t>(p - buf)))) {
        stats_.resumed_commands += 1;
      }
    }
  }
  if (on_connect_) {
    on_connect_(true, 0);
  }
  return false;  // one-shot
}

void ControlClient::Disconnect() {
  if (read_watch_ != 0) {
    loop_->Remove(read_watch_);
    read_watch_ = 0;
  }
  writer_.Reset();
  framer_.Reset();
  socket_.Close();
  state_ = ConnectState::kDisconnected;
}

bool ControlClient::OnReadable(IoCondition cond) {
  if (Has(cond, IoCondition::kErr)) {
    Disconnect();
    return false;
  }
  char buf[65536];
  while (true) {
    IoResult r = socket_.Read(buf, sizeof(buf));
    if (r.status == IoResult::Status::kOk) {
      stats_.bytes_received += static_cast<int64_t>(r.bytes);
      framer_.Consume(buf, r.bytes, &stats_.parse_errors,
                      [this](std::string_view line) { HandleLine(line); });
      continue;
    }
    if (r.status == IoResult::Status::kWouldBlock) {
      return true;
    }
    framer_.FlushTail([this](std::string_view line) { HandleLine(line); });
    read_watch_ = 0;  // returning false removes this watch
    Disconnect();
    return false;
  }
}

void ControlClient::HandleLine(std::string_view line) {
  if (!line.empty() && line.back() == '\r') {
    line.remove_suffix(1);
  }
  if (line.empty()) {
    return;
  }
  char c = line.front();
  if ((c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z')) {
    if (line.rfind("OK", 0) == 0) {
      stats_.replies_ok += 1;
    } else if (line.rfind("ERR", 0) == 0) {
      stats_.replies_err += 1;
    } else if (line.rfind("INFO", 0) == 0) {
      stats_.replies_info += 1;
    } else {
      stats_.parse_errors += 1;
      return;
    }
    if (on_reply_) {
      on_reply_(line);
    }
    return;
  }
  std::optional<TupleView> tuple = ParseTupleView(line);
  if (!tuple.has_value()) {
    if (!IsIgnorableLine(line)) {
      stats_.parse_errors += 1;
    }
    return;
  }
  stats_.tuples_received += 1;
  if (on_tuple_) {
    on_tuple_(*tuple);
  }
}

bool ControlClient::SendCommand(std::string_view verb, std::string_view arg) {
  if (state_ != ConnectState::kConnected && state_ != ConnectState::kConnecting) {
    stats_.frames_dropped += 1;
    return false;
  }
  std::string& buf = writer_.BeginFrame();
  buf.append(verb);
  if (!arg.empty()) {
    buf.push_back(' ');
    buf.append(arg);
  }
  buf.push_back('\n');
  if (!writer_.CommitFrame()) {
    stats_.frames_dropped += 1;
    return false;
  }
  if (state_ == ConnectState::kConnecting) {
    preconnect_frames_ += 1;
  }
  stats_.commands_sent += 1;
  return true;
}

bool ControlClient::Subscribe(std::string_view glob) {
  // Remember the pattern even when the send fails (e.g. disconnected):
  // declared intent is what a reconnect replays.
  if (std::find(sub_patterns_.begin(), sub_patterns_.end(), glob) == sub_patterns_.end()) {
    sub_patterns_.emplace_back(glob);
  }
  bool sent = SendCommand("SUB", glob);
  if (sent && state_ == ConnectState::kConnecting) {
    handshake_subs_.emplace_back(glob);  // already queued; replay must skip it
  }
  return sent;
}

bool ControlClient::Unsubscribe(std::string_view glob) {
  auto it = std::find(sub_patterns_.begin(), sub_patterns_.end(), glob);
  if (it != sub_patterns_.end()) {
    sub_patterns_.erase(it);
  }
  return SendCommand("UNSUB", glob);
}

bool ControlClient::SetDelay(int64_t delay_ms) {
  if (delay_ms >= 0) {
    has_delay_ = true;
    delay_ms_ = delay_ms;
  }
  char buf[24];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), delay_ms);
  (void)ec;
  bool sent = SendCommand("DELAY", std::string_view(buf, static_cast<size_t>(p - buf)));
  if (sent && delay_ms >= 0 && state_ == ConnectState::kConnecting) {
    handshake_delay_ = true;  // the queued DELAY frame already carries it
  }
  return sent;
}

bool ControlClient::RequestList() { return SendCommand("LIST", {}); }

bool ControlClient::RequestStats() { return SendCommand("STATS", {}); }

void ControlClient::ForgetSession() {
  sub_patterns_.clear();
  handshake_subs_.clear();
  has_delay_ = false;
  handshake_delay_ = false;
}

bool ControlClient::Send(int64_t time_ms, double value, std::string_view name) {
  if (state_ != ConnectState::kConnected && state_ != ConnectState::kConnecting) {
    stats_.frames_dropped += 1;
    return false;
  }
  AppendTuple(writer_.BeginFrame(), time_ms, value, name);
  if (!writer_.CommitFrame()) {
    stats_.frames_dropped += 1;
    return false;
  }
  if (state_ == ConnectState::kConnecting) {
    preconnect_frames_ += 1;
  }
  stats_.tuples_pushed += 1;
  return true;
}

}  // namespace gscope
