#include "net/stream_client.h"

namespace gscope {

StreamClient::StreamClient(MainLoop* loop, size_t max_buffer)
    : loop_(loop), max_buffer_(max_buffer) {}

StreamClient::~StreamClient() { Close(); }

bool StreamClient::Connect(uint16_t port) {
  Close();
  socket_ = Socket::Connect(port);
  return socket_.valid();
}

void StreamClient::Close() {
  if (write_watch_ != 0) {
    loop_->Remove(write_watch_);
    write_watch_ = 0;
  }
  socket_.Close();
  out_buffer_.clear();
  out_offset_ = 0;
}

bool StreamClient::SendTuple(const Tuple& tuple) {
  return Send(tuple.time_ms, tuple.value, tuple.name);
}

bool StreamClient::Send(int64_t time_ms, double value, std::string_view name) {
  if (!socket_.valid()) {
    stats_.tuples_dropped += 1;
    return false;
  }
  // Format in place at the end of the output buffer (its capacity is reused
  // across drains, so steady-state sends do not allocate); roll back if the
  // tuple would overflow the backlog cap.
  size_t before = out_buffer_.size();
  AppendTuple(out_buffer_, time_ms, value, name);
  if (out_buffer_.size() - out_offset_ > max_buffer_) {
    out_buffer_.resize(before);
    stats_.tuples_dropped += 1;
    return false;
  }
  stats_.tuples_sent += 1;
  EnsureWriteWatch();
  return true;
}

void StreamClient::EnsureWriteWatch() {
  if (write_watch_ != 0 || !socket_.valid()) {
    return;
  }
  write_watch_ = loop_->AddIoWatch(socket_.fd(), IoCondition::kOut,
                                   [this](int, IoCondition) { return OnWritable(); });
}

bool StreamClient::OnWritable() {
  while (out_offset_ < out_buffer_.size()) {
    IoResult r = socket_.Write(out_buffer_.data() + out_offset_,
                               out_buffer_.size() - out_offset_);
    if (r.status == IoResult::Status::kOk) {
      out_offset_ += r.bytes;
      stats_.bytes_sent += static_cast<int64_t>(r.bytes);
      continue;
    }
    if (r.status == IoResult::Status::kWouldBlock) {
      return true;  // keep the watch; try again when writable
    }
    // Error: the connection is gone.
    socket_.Close();
    out_buffer_.clear();
    out_offset_ = 0;
    write_watch_ = 0;
    return false;
  }
  // Fully drained: compact and remove the watch until more data arrives.
  out_buffer_.clear();
  out_offset_ = 0;
  write_watch_ = 0;
  return false;
}

}  // namespace gscope
