#include "net/stream_client.h"

#include <algorithm>

namespace gscope {

StreamClient::StreamClient(MainLoop* loop, Options options)
    : loop_(loop),
      options_(options),
      writer_(loop, options.max_buffer),
      jitter_rng_(options.reconnect.seed) {
  writer_.SetPolicy(options.overflow_policy, MillisToNanos(options.block_deadline_ms));
  writer_.SetAdaptive(options.adaptive);
  // A hard write error after establishment means the connection is gone; the
  // writer has already dropped the backlog and detached.
  writer_.SetErrorCallback([this]() {
    socket_.Close();
    if (read_watch_ != 0) {
      loop_->Remove(read_watch_);
      read_watch_ = 0;
    }
    DropStagedWire();
    HandleConnectionDeath();
  });
}

StreamClient::~StreamClient() {
  self_alias_.reset();  // invalidate deferred flush closures before teardown
  Close();
}

void StreamClient::SetState(ConnectState state) {
  if (state_ == state) {
    return;
  }
  state_ = state;
  if (on_state_) {
    on_state_(state);
  }
}

bool StreamClient::Connect(uint16_t port) {
  Close();
  port_ = port;
  cur_backoff_ms_ = std::max<int64_t>(1, options_.reconnect.initial_backoff_ms);
  failed_attempts_ = 0;
  return StartConnect();
}

bool StreamClient::StartConnect() {
  stats_.connect_attempts += 1;
  socket_ = Socket::Connect(port_);
  if (!socket_.valid()) {
    return FailAttempt(0);
  }
  if (options_.sndbuf_bytes > 0) {
    socket_.SetSendBufferBytes(options_.sndbuf_bytes);
  }
  SetState(ConnectState::kConnecting);
  // The handshake outcome is signalled by the first writability event; the
  // FramedWriter attaches only after SO_ERROR confirms establishment, so a
  // refused connect never looks like a drained backlog.
  connect_watch_ = loop_->AddIoWatch(
      socket_.fd(), IoCondition::kOut | IoCondition::kErr,
      [this](int, IoCondition cond) { return OnConnectReady(cond); });
  if (connect_watch_ == 0) {
    socket_.Close();
    return FailAttempt(0);
  }
  return true;
}

void StreamClient::Close() {
  if (connect_watch_ != 0) {
    loop_->Remove(connect_watch_);
    connect_watch_ = 0;
  }
  if (read_watch_ != 0) {
    loop_->Remove(read_watch_);
    read_watch_ = 0;
  }
  if (retry_timer_ != 0) {
    loop_->Remove(retry_timer_);
    retry_timer_ = 0;
  }
  DropStagedWire();
  size_t discarded = writer_.Reset();
  if (state_ == ConnectState::kConnecting) {
    // Frames queued behind an unresolved handshake never counted as sent;
    // they resolve to dropped, and the Reset()-side abandonment is backed
    // out so delivered == sent - evicted - abandoned keeps holding.
    stats_.tuples_dropped += static_cast<int64_t>(discarded);
    preconnect_discards_ += static_cast<int64_t>(discarded);
  }
  socket_.Close();
  SetState(ConnectState::kDisconnected);
  preconnect_tuples_ = 0;
  wire_ = WireState::kTextOnly;
  hello_rx_.Reset();
}

bool StreamClient::OnConnectReady(IoCondition) {
  // Both kOut and kErr resolve through SO_ERROR: poll(2) reports a failed
  // non-blocking connect as writable-with-error, and reading the option
  // also clears it.
  connect_watch_ = 0;
  ResolveConnect(socket_.PendingError());
  return false;  // one-shot: the FramedWriter owns writability from here
}

void StreamClient::ResolveConnect(int error) {
  if (error != 0) {
    stats_.tuples_dropped += preconnect_tuples_;
    preconnect_tuples_ = 0;
    // Already counted dropped above: back the Reset()-side abandonment out
    // of the stats mapping (they were never sent, so counting them
    // abandoned too would double-book the loss).
    preconnect_discards_ += static_cast<int64_t>(writer_.Reset());
    socket_.Close();
    FailAttempt(error);
    if (on_connect_) {
      on_connect_(false, error);
    }
    return;
  }
  SetState(ConnectState::kConnected);
  failed_attempts_ = 0;
  cur_backoff_ms_ = std::max<int64_t>(1, options_.reconnect.initial_backoff_ms);
  establishments_ += 1;
  if (establishments_ > 1) {
    stats_.reconnects += 1;
  }
  stats_.tuples_sent += preconnect_tuples_;
  preconnect_tuples_ = 0;
  writer_.Attach(socket_.fd());  // flushes anything queued pre-connect
  if (options_.wire_format == WireFormat::kBinary) {
    // Negotiate on EVERY establishment: a reconnect renegotiates HELLO (and
    // the dictionary rides inside each frame, so nothing else needs replay).
    // The line travels behind any pre-connect text tuples already queued;
    // sends stay text until the acknowledgment arrives.  Weight 0: the
    // HELLO frame carries no tuples, so evicting/abandoning it never
    // perturbs the tuple accounting.
    wire_ = WireState::kHelloSent;
    hello_rx_.Reset();
    encoder_.ResetDict();
    writer_.BeginFrame().append("HELLO BIN 1\n");
    writer_.CommitFrame(0);
  } else {
    wire_ = WireState::kTextOnly;
  }
  // A pure producer never expects data back, so the read watch exists to
  // notice the server going away promptly (EOF/reset arrives as readable)
  // instead of on the next failed write.
  read_watch_ =
      loop_->AddIoWatch(socket_.fd(), IoCondition::kIn | IoCondition::kHup | IoCondition::kErr,
                        [this](int, IoCondition) { return OnSocketReadable(); });
  if (on_connect_) {
    on_connect_(true, 0);
  }
}

bool StreamClient::OnSocketReadable() {
  char buf[256];
  while (true) {
    IoResult r = socket_.Read(buf, sizeof(buf));
    if (r.status == IoResult::Status::kOk) {
      stats_.bytes_discarded += static_cast<int64_t>(r.bytes);
      if (wire_ == WireState::kHelloSent) {
        // The only reply a producer awaits: the HELLO verdict.  Anything
        // after it (there is nothing today) is discarded as before.
        hello_rx_.ConsumeStoppable(
            buf, r.bytes, &hello_rx_overlong_, [this](std::string_view line) {
              if (line.rfind("OK HELLO BIN 1", 0) == 0) {
                wire_ = WireState::kBinary;
              } else if (line.rfind("ERR HELLO", 0) == 0) {
                wire_ = WireState::kTextOnly;  // declined: stay text for good
              }
              return wire_ == WireState::kHelloSent;
            });
      }
      continue;
    }
    if (r.status == IoResult::Status::kWouldBlock) {
      return true;
    }
    break;  // EOF or hard error: the connection is gone
  }
  read_watch_ = 0;
  DropStagedWire();
  writer_.Reset();  // unsent frames are lost with the connection (abandoned)
  socket_.Close();
  HandleConnectionDeath();
  return false;
}

void StreamClient::HandleConnectionDeath() {
  wire_ = WireState::kTextOnly;  // a future connection renegotiates
  const ReconnectOptions& r = options_.reconnect;
  if (r.enabled && port_ != 0 &&
      (r.max_attempts == 0 || failed_attempts_ < r.max_attempts)) {
    EnterBackoff();
    return;
  }
  SetState(ConnectState::kDisconnected);
}

bool StreamClient::FailAttempt(int error) {
  last_error_ = error;
  stats_.connect_failures += 1;
  failed_attempts_ += 1;
  const ReconnectOptions& r = options_.reconnect;
  if (r.enabled && (r.max_attempts == 0 || failed_attempts_ < r.max_attempts)) {
    EnterBackoff();
    return true;
  }
  SetState(ConnectState::kFailed);
  return false;
}

void StreamClient::EnterBackoff() {
  int64_t delay = cur_backoff_ms_;
  if (options_.reconnect.jitter_frac > 0) {
    std::uniform_real_distribution<double> jitter(0.0, options_.reconnect.jitter_frac);
    delay += static_cast<int64_t>(jitter(jitter_rng_) * static_cast<double>(cur_backoff_ms_));
  }
  delay = std::max<int64_t>(1, delay);
  last_backoff_ms_ = delay;
  cur_backoff_ms_ = std::min<int64_t>(
      std::max<int64_t>(1, options_.reconnect.max_backoff_ms),
      static_cast<int64_t>(static_cast<double>(cur_backoff_ms_) *
                           std::max(1.0, options_.reconnect.multiplier)));
  retry_timer_ = loop_->AddTimeoutMs(delay, std::function<bool()>([this]() {
                                       retry_timer_ = 0;
                                       StartConnect();
                                       return false;
                                     }));
  // Announce the state only after the delay is armed and published:
  // observers of the kBackoff edge read a consistent last_backoff_ms().
  SetState(ConnectState::kBackoff);
}

bool StreamClient::SendTuple(const Tuple& tuple) {
  return Send(tuple.time_ms, tuple.value, tuple.name);
}

bool StreamClient::Send(int64_t time_ms, double value, std::string_view name) {
  if (state_ != ConnectState::kConnected && state_ != ConnectState::kConnecting) {
    // Includes kBackoff: data produced while the link is down is disposable
    // (the paper's stance); it is counted dropped rather than queued
    // unboundedly against a server that may never come back.
    stats_.tuples_dropped += 1;
    return false;
  }
  if (wire_ == WireState::kBinary) {
    // kBinary implies kConnected: the flip happens only after the server's
    // acknowledgment arrives on an established connection.
    return SendBinary(time_ms, value, name);
  }
  // Format in place at the end of the output backlog (its capacity is reused
  // across drains, so steady-state sends do not allocate); the writer rolls
  // the whole frame back if it would overflow the cap.
  AppendTuple(writer_.BeginFrame(), time_ms, value, name);
  if (!writer_.CommitFrame()) {
    stats_.tuples_dropped += 1;
    return false;
  }
  if (state_ == ConnectState::kConnected) {
    stats_.tuples_sent += 1;
  } else {
    preconnect_tuples_ += 1;
  }
  return true;
}

bool StreamClient::SendBinary(int64_t time_ms, double value, std::string_view name) {
  wire::StageResult r = encoder_.Add(name, time_ms, value);
  if (r == wire::StageResult::kFrameFull) {
    FlushWire();
    r = encoder_.Add(name, time_ms, value);
  }
  if (r != wire::StageResult::kStaged) {
    stats_.tuples_dropped += 1;
    return false;
  }
  if (encoder_.staged_samples() >= options_.frame_samples) {
    // The frame's worth accumulated: seal inline.  The sample is staged
    // either way; a full backlog surfaces in tuples_dropped, not here.
    FlushWire();
  } else {
    ScheduleWireFlush();
  }
  return true;
}

bool StreamClient::FlushWire() {
  size_t n = encoder_.staged_samples();
  if (n == 0) {
    return true;
  }
  if (state_ != ConnectState::kConnected || wire_ != WireState::kBinary) {
    // The connection died between staging and the deferred flush; a fresh
    // connection must not receive frames negotiated on the old one.
    DropStagedWire();
    return false;
  }
  std::string& buf = writer_.BeginFrame();
  encoder_.EmitFrame(buf);
  if (!writer_.CommitFrame(static_cast<uint32_t>(n))) {
    stats_.tuples_dropped += static_cast<int64_t>(n);
    return false;
  }
  stats_.tuples_sent += static_cast<int64_t>(n);
  return true;
}

void StreamClient::ScheduleWireFlush() {
  if (wire_flush_pending_) {
    return;
  }
  wire_flush_pending_ = true;
  std::weak_ptr<StreamClient> weak_self = self_alias_;
  loop_->Invoke([weak_self]() {
    if (std::shared_ptr<StreamClient> client = weak_self.lock()) {
      client->wire_flush_pending_ = false;
      client->FlushWire();
    }
  });
}

void StreamClient::DropStagedWire() {
  stats_.tuples_dropped += static_cast<int64_t>(encoder_.ClearStaged());
}

}  // namespace gscope
