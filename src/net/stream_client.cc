#include "net/stream_client.h"

namespace gscope {

StreamClient::StreamClient(MainLoop* loop, Options options)
    : loop_(loop), options_(options), writer_(loop, options.max_buffer) {
  writer_.SetPolicy(options.overflow_policy, MillisToNanos(options.block_deadline_ms));
  // A hard write error after establishment means the connection is gone; the
  // writer has already dropped the backlog and detached.
  writer_.SetErrorCallback([this]() {
    socket_.Close();
    state_ = ConnectState::kDisconnected;
  });
}

StreamClient::~StreamClient() { Close(); }

bool StreamClient::Connect(uint16_t port) {
  Close();
  socket_ = Socket::Connect(port);
  if (!socket_.valid()) {
    state_ = ConnectState::kFailed;
    stats_.connect_failures += 1;
    return false;
  }
  if (options_.sndbuf_bytes > 0) {
    socket_.SetSendBufferBytes(options_.sndbuf_bytes);
  }
  state_ = ConnectState::kConnecting;
  // The handshake outcome is signalled by the first writability event; the
  // FramedWriter attaches only after SO_ERROR confirms establishment, so a
  // refused connect never looks like a drained backlog.
  connect_watch_ = loop_->AddIoWatch(
      socket_.fd(), IoCondition::kOut | IoCondition::kErr,
      [this](int, IoCondition cond) { return OnConnectReady(cond); });
  if (connect_watch_ == 0) {
    socket_.Close();
    state_ = ConnectState::kFailed;
    stats_.connect_failures += 1;
    return false;
  }
  return true;
}

void StreamClient::Close() {
  if (connect_watch_ != 0) {
    loop_->Remove(connect_watch_);
    connect_watch_ = 0;
  }
  size_t discarded = writer_.Reset();
  if (state_ == ConnectState::kConnecting) {
    // Frames queued behind an unresolved handshake never counted as sent;
    // they resolve to dropped, and the Reset()-side abandonment is backed
    // out so delivered == sent - evicted - abandoned keeps holding.
    stats_.tuples_dropped += static_cast<int64_t>(discarded);
    preconnect_discards_ += static_cast<int64_t>(discarded);
  }
  socket_.Close();
  state_ = ConnectState::kDisconnected;
  preconnect_tuples_ = 0;
}

bool StreamClient::OnConnectReady(IoCondition) {
  // Both kOut and kErr resolve through SO_ERROR: poll(2) reports a failed
  // non-blocking connect as writable-with-error, and reading the option
  // also clears it.
  connect_watch_ = 0;
  ResolveConnect(socket_.PendingError());
  return false;  // one-shot: the FramedWriter owns writability from here
}

void StreamClient::ResolveConnect(int error) {
  if (error != 0) {
    last_error_ = error;
    state_ = ConnectState::kFailed;
    stats_.connect_failures += 1;
    stats_.tuples_dropped += preconnect_tuples_;
    preconnect_tuples_ = 0;
    // Already counted dropped above: back the Reset()-side abandonment out
    // of the stats mapping (they were never sent, so counting them
    // abandoned too would double-book the loss).
    preconnect_discards_ += static_cast<int64_t>(writer_.Reset());
    socket_.Close();
    if (on_connect_) {
      on_connect_(false, error);
    }
    return;
  }
  state_ = ConnectState::kConnected;
  stats_.tuples_sent += preconnect_tuples_;
  preconnect_tuples_ = 0;
  writer_.Attach(socket_.fd());  // flushes anything queued pre-connect
  if (on_connect_) {
    on_connect_(true, 0);
  }
}

bool StreamClient::SendTuple(const Tuple& tuple) {
  return Send(tuple.time_ms, tuple.value, tuple.name);
}

bool StreamClient::Send(int64_t time_ms, double value, std::string_view name) {
  if (state_ != ConnectState::kConnected && state_ != ConnectState::kConnecting) {
    stats_.tuples_dropped += 1;
    return false;
  }
  // Format in place at the end of the output backlog (its capacity is reused
  // across drains, so steady-state sends do not allocate); the writer rolls
  // the whole frame back if it would overflow the cap.
  AppendTuple(writer_.BeginFrame(), time_ms, value, name);
  if (!writer_.CommitFrame()) {
    stats_.tuples_dropped += 1;
    return false;
  }
  if (state_ == ConnectState::kConnected) {
    stats_.tuples_sent += 1;
  } else {
    preconnect_tuples_ += 1;
  }
  return true;
}

}  // namespace gscope
