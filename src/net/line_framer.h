// Newline framing over a non-blocking byte stream, shared by the tuple
// stream server and the control client (docs/protocol.md).
//
// Complete lines inside a read chunk are framed with memchr and handed to
// the callback as views into the read buffer (no copy); only a line split
// across reads is accumulated in the side buffer.  A line longer than
// `max_line_bytes` (terminator excluded, a trailing '\r' included) is
// counted exactly once as over-long and discarded; framing resynchronizes
// at the next newline.  A line of exactly `max_line_bytes` parses, however
// it is split across reads.
#ifndef GSCOPE_NET_LINE_FRAMER_H_
#define GSCOPE_NET_LINE_FRAMER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace gscope {

class LineFramer {
 public:
  explicit LineFramer(size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes == 0 ? 1 : max_line_bytes) {}

  // Frames one read chunk: fn(std::string_view line) per complete line (the
  // terminating '\n' stripped, any '\r' left for the parser's whitespace
  // handling), *overlong_lines incremented once per over-cap line.
  template <typename Fn>
  void Consume(const char* data, size_t len, int64_t* overlong_lines, Fn&& fn) {
    size_t pos = 0;
    while (pos < len) {
      const char* nl = static_cast<const char*>(std::memchr(data + pos, '\n', len - pos));
      if (nl == nullptr) {
        // No newline in the remainder: keep the tail for the next read.
        size_t tail = len - pos;
        if (discarding_) {
          break;
        }
        if (buffer_.size() + tail > max_line_bytes_) {
          *overlong_lines += 1;
          buffer_.clear();
          discarding_ = true;  // resynchronize at the next newline
          break;
        }
        buffer_.append(data + pos, tail);
        break;
      }
      size_t line_end = static_cast<size_t>(nl - data);
      if (discarding_) {
        discarding_ = false;  // the over-long line ends here
      } else if (!buffer_.empty()) {
        // Split line: complete it in the side buffer (the only copied case).
        if (buffer_.size() + (line_end - pos) > max_line_bytes_) {
          *overlong_lines += 1;
        } else {
          buffer_.append(data + pos, line_end - pos);
          fn(std::string_view(buffer_));
        }
        buffer_.clear();
      } else if (line_end - pos > max_line_bytes_) {
        *overlong_lines += 1;
      } else {
        // Whole line inside the read buffer: hand out a view in place.
        fn(std::string_view(data + pos, line_end - pos));
      }
      pos = line_end + 1;
    }
  }

  // Like Consume, but fn returns bool: false stops framing after that line
  // and the call returns how many bytes of the chunk were consumed (through
  // that line's '\n').  The caller hands the unconsumed remainder to another
  // decoder - this is how a connection switches framing mid-chunk after a
  // protocol upgrade line (docs/protocol.md, HELLO).  With fn always
  // returning true this is exactly Consume.
  template <typename Fn>
  size_t ConsumeStoppable(const char* data, size_t len, int64_t* overlong_lines,
                          Fn&& fn) {
    size_t pos = 0;
    while (pos < len) {
      const char* nl = static_cast<const char*>(std::memchr(data + pos, '\n', len - pos));
      if (nl == nullptr) {
        size_t tail = len - pos;
        if (discarding_) {
          return len;
        }
        if (buffer_.size() + tail > max_line_bytes_) {
          *overlong_lines += 1;
          buffer_.clear();
          discarding_ = true;
          return len;
        }
        buffer_.append(data + pos, tail);
        return len;
      }
      size_t line_end = static_cast<size_t>(nl - data);
      bool keep_going = true;
      if (discarding_) {
        discarding_ = false;
      } else if (!buffer_.empty()) {
        if (buffer_.size() + (line_end - pos) > max_line_bytes_) {
          *overlong_lines += 1;
        } else {
          buffer_.append(data + pos, line_end - pos);
          keep_going = fn(std::string_view(buffer_));
        }
        buffer_.clear();
      } else if (line_end - pos > max_line_bytes_) {
        *overlong_lines += 1;
      } else {
        keep_going = fn(std::string_view(data + pos, line_end - pos));
      }
      pos = line_end + 1;
      if (!keep_going) {
        return pos;
      }
    }
    return len;
  }

  // EOF: delivers a final unterminated line, if any.
  template <typename Fn>
  void FlushTail(Fn&& fn) {
    if (!discarding_ && !buffer_.empty()) {
      fn(std::string_view(buffer_));
    }
    Reset();
  }

  void Reset() {
    buffer_.clear();
    discarding_ = false;
  }

  // A partial line is buffered or an over-long line is being discarded.
  bool mid_line() const { return discarding_ || !buffer_.empty(); }

 private:
  size_t max_line_bytes_;
  std::string buffer_;
  bool discarding_ = false;
};

}  // namespace gscope

#endif  // GSCOPE_NET_LINE_FRAMER_H_
