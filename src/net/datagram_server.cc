#include "net/datagram_server.h"

#include <cstring>

namespace gscope {

DatagramServer::DatagramServer(MainLoop* loop, Scope* scope, DatagramServerOptions options)
    : loop_(loop),
      options_(options),
      router_({.auto_create_signals = options.auto_create_signals,
               .fanout_shards = options.fanout_shards,
               .worker_threads = options.fanout_workers}) {
  if (options_.max_datagram_bytes == 0) {
    options_.max_datagram_bytes = 65536;
  }
  if (options_.max_datagrams_per_wakeup == 0) {
    options_.max_datagrams_per_wakeup = 1;
  }
  if (scope != nullptr) {
    router_.AddScope(scope);
  }
}

DatagramServer::~DatagramServer() { Close(); }

bool DatagramServer::AddScope(Scope* scope) { return router_.AddScope(scope); }

bool DatagramServer::RemoveScope(Scope* scope) { return router_.RemoveScope(scope); }

bool DatagramServer::Listen(uint16_t port) {
  Close();
  socket_ = Socket::BindDatagram(port, &port_);
  if (!socket_.valid()) {
    return false;
  }
  last_kernel_drop_counter_ = 0;  // fresh socket, fresh kernel counter
  recv_buf_.resize(options_.max_datagram_bytes);
  watch_ = loop_->AddIoWatch(socket_.fd(), IoCondition::kIn,
                             [this](int, IoCondition) { return OnReadable(); });
  return watch_ != 0;
}

void DatagramServer::Close() {
  if (watch_ != 0) {
    loop_->Remove(watch_);
    watch_ = 0;
  }
  socket_.Close();
  port_ = 0;
}

bool DatagramServer::OnReadable() {
  // Drain the burst (bounded, so a flood cannot starve the loop), then
  // flush once: every datagram in this readable round shares one parsed
  // block and one span hand-off per scope.  Leftovers re-trigger the watch.
  for (size_t i = 0; i < options_.max_datagrams_per_wakeup; ++i) {
    Socket::DatagramResult r = socket_.ReadDatagram(recv_buf_.data(), recv_buf_.size());
    if (r.status == IoResult::Status::kWouldBlock) {
      break;
    }
    if (r.status != IoResult::Status::kOk) {
      // Transient (e.g. ECONNREFUSED bounced back on loopback): keep the
      // watch; UDP has no connection to drop.
      break;
    }
    stats_.datagrams += 1;
    stats_.bytes += static_cast<int64_t>(r.bytes);
    if (r.has_kernel_drops) {
      // The kernel counter is cumulative per socket (restarting at zero on
      // every Listen(), which resets the baseline) and wraps at 2^32, so the
      // unsigned difference is the exact drop count since the last reading.
      // Only readings where the control message was actually present update
      // the baseline: treating an absent counter as 0 would wrap the delta
      // and march stats_.kernel_drops backwards or double-count on rebind.
      stats_.kernel_drops +=
          static_cast<int64_t>(r.kernel_drops - last_kernel_drop_counter_);
      last_kernel_drop_counter_ = r.kernel_drops;
    }
    if (r.truncated) {
      stats_.truncated_datagrams += 1;
      continue;  // the cut line cannot be trusted; UDP cannot resync
    }
    HandleDatagram(recv_buf_.data(), r.bytes);
  }
  IngestRouter::FlushStats flushed = router_.Flush();
  stats_.dropped_late += flushed.dropped_late;
  return true;
}

void DatagramServer::HandleDatagram(const char* data, size_t len) {
  size_t pos = 0;
  while (pos < len) {
    const char* nl = static_cast<const char*>(std::memchr(data + pos, '\n', len - pos));
    if (nl == nullptr) {
      // Final line without a newline: datagrams are self-contained, so
      // parse it anyway and note the short framing.
      stats_.short_datagrams += 1;
      HandleLine(std::string_view(data + pos, len - pos));
      return;
    }
    size_t line_end = static_cast<size_t>(nl - data);
    HandleLine(std::string_view(data + pos, line_end - pos));
    pos = line_end + 1;
  }
}

void DatagramServer::HandleLine(std::string_view line) {
  router_.AppendTupleLine(line, &stats_.tuples, &stats_.parse_errors);
}

}  // namespace gscope
