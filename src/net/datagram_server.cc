#include "net/datagram_server.h"

#include <cstring>

namespace gscope {

DatagramServer::DatagramServer(MainLoop* loop, Scope* scope, DatagramServerOptions options)
    : loop_(loop),
      options_(options),
      router_({.auto_create_signals = options.auto_create_signals,
               .fanout_shards = options.fanout_shards,
               .worker_threads = options.fanout_workers}),
      pool_(loop, options.loops) {
  if (options_.max_datagram_bytes == 0) {
    options_.max_datagram_bytes = 65536;
  }
  if (options_.max_datagrams_per_wakeup == 0) {
    options_.max_datagrams_per_wakeup = 1;
  }
  options_.loops = pool_.size();  // clamped to >= 1
  router_.SetConcurrent(pool_.size() > 1);
  shards_.reserve(pool_.size());
  for (size_t i = 0; i < pool_.size(); ++i) {
    auto shard = std::make_unique<Shard>();
    shard->loop = pool_.loop(i);
    shards_.push_back(std::move(shard));
  }
  if (scope != nullptr) {
    router_.AddScope(scope);
  }
}

DatagramServer::~DatagramServer() { Close(); }

bool DatagramServer::AddScope(Scope* scope) { return router_.AddScope(scope); }

bool DatagramServer::RemoveScope(Scope* scope) { return router_.RemoveScope(scope); }

bool DatagramServer::Listen(uint16_t port) {
  Close();
  const size_t loops = pool_.size();
  reuse_port_active_ = false;
  if (loops > 1 && Socket::ReusePortSupported()) {
    // Socket per loop, same port: the kernel spreads datagrams by source
    // address, so one producer's stream stays ordered on one loop.
    Socket first = Socket::BindDatagram(port, &port_, /*reuse_port=*/true);
    bool bound = first.valid();
    if (bound) {
      shards_[0]->socket = std::move(first);
      for (size_t i = 1; i < loops && bound; ++i) {
        shards_[i]->socket = Socket::BindDatagram(port_, nullptr, /*reuse_port=*/true);
        bound = shards_[i]->socket.valid();
      }
    }
    if (bound) {
      reuse_port_active_ = true;
    } else {
      // The probe can pass yet the concrete bind fail: fall back to the
      // single-socket single-loop receive path (UDP has no hand-off
      // equivalent - there is no accepted connection to migrate).
      for (auto& shard : shards_) {
        shard->socket.Close();
      }
      port_ = 0;
    }
  }
  if (!reuse_port_active_) {
    shards_[0]->socket = Socket::BindDatagram(port, &port_);
    if (!shards_[0]->socket.valid()) {
      return false;
    }
  }
  if (reuse_port_active_) {
    pool_.Start();
  }
  const size_t active = reuse_port_active_ ? loops : 1;
  bool ok = true;
  for (size_t i = 0; i < active; ++i) {
    Shard* shard = shards_[i].get();
    pool_.InvokeSync(i, [this, shard, &ok]() {
      shard->last_kernel_drop_counter = 0;  // fresh socket, fresh counter
      shard->recv_buf.resize(options_.max_datagram_bytes);
      shard->watch = shard->loop->AddIoWatch(
          shard->socket.fd(), IoCondition::kIn,
          [this, shard](int, IoCondition) { return OnReadable(*shard); });
      if (shard->watch == 0) {
        ok = false;
      }
    });
  }
  if (!ok) {
    Close();
    return false;
  }
  return true;
}

void DatagramServer::Close() {
  for (size_t i = 0; i < pool_.size(); ++i) {
    Shard* shard = shards_[i].get();
    pool_.InvokeSync(i, [shard]() {
      if (shard->watch != 0) {
        shard->loop->Remove(shard->watch);
        shard->watch = 0;
      }
      shard->socket.Close();
    });
  }
  pool_.Stop();
  port_ = 0;
}

bool DatagramServer::OnReadable(Shard& shard) {
  // Drain the burst (bounded, so a flood cannot starve the loop), then
  // flush once: every datagram in this readable round shares one parsed
  // block and one span hand-off per scope.  Leftovers re-trigger the watch.
  for (size_t i = 0; i < options_.max_datagrams_per_wakeup; ++i) {
    Socket::DatagramResult r =
        shard.socket.ReadDatagram(shard.recv_buf.data(), shard.recv_buf.size());
    if (r.status == IoResult::Status::kWouldBlock) {
      break;
    }
    if (r.status != IoResult::Status::kOk) {
      // Transient (e.g. ECONNREFUSED bounced back on loopback): keep the
      // watch; UDP has no connection to drop.
      break;
    }
    stats_.datagrams += 1;
    stats_.bytes += static_cast<int64_t>(r.bytes);
    if (r.has_kernel_drops) {
      // The kernel counter is cumulative per socket (restarting at zero on
      // every Listen(), which resets the baseline) and wraps at 2^32, so the
      // unsigned difference is the exact drop count since the last reading.
      // Only readings where the control message was actually present update
      // the baseline: treating an absent counter as 0 would wrap the delta
      // and march stats_.kernel_drops backwards or double-count on rebind.
      stats_.kernel_drops +=
          static_cast<int64_t>(r.kernel_drops - shard.last_kernel_drop_counter);
      shard.last_kernel_drop_counter = r.kernel_drops;
    }
    if (r.truncated) {
      stats_.truncated_datagrams += 1;
      continue;  // the cut line cannot be trusted; UDP cannot resync
    }
    HandleDatagram(shard.recv_buf.data(), r.bytes);
  }
  IngestRouter::FlushStats flushed = router_.Flush();
  stats_.dropped_late += flushed.dropped_late;
  return true;
}

void DatagramServer::HandleDatagram(const char* data, size_t len) {
  size_t pos = 0;
  while (pos < len) {
    const char* nl = static_cast<const char*>(std::memchr(data + pos, '\n', len - pos));
    if (nl == nullptr) {
      // Final line without a newline: datagrams are self-contained, so
      // parse it anyway and note the short framing.
      stats_.short_datagrams += 1;
      HandleLine(std::string_view(data + pos, len - pos));
      return;
    }
    size_t line_end = static_cast<size_t>(nl - data);
    HandleLine(std::string_view(data + pos, line_end - pos));
    pos = line_end + 1;
  }
}

void DatagramServer::HandleLine(std::string_view line) {
  int64_t tuples = 0;
  int64_t parse_errors = 0;
  router_.AppendTupleLine(line, &tuples, &parse_errors);
  stats_.tuples += tuples;
  stats_.parse_errors += parse_errors;
}

}  // namespace gscope
