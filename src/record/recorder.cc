#include "record/recorder.h"

#include <condition_variable>
#include <mutex>

namespace gscope {

Recorder::Recorder(RecorderOptions options) : options_(std::move(options)),
                                              log_(options_.log) {}

Recorder::~Recorder() { Stop(); }

bool Recorder::Start(const std::string& path) {
  if (running_) {
    return false;
  }
  if (!log_.Open(path)) {
    return false;
  }
  path_ = path;
  // Recovery tallies are known before the loop runs: publish them now so a
  // STATS fold sees extents_recovered without waiting a tick.
  stats_.extents_recovered = log_.stats().extents_recovered;
  stats_.extents_truncated = log_.stats().extents_truncated;

  if (options_.loop != nullptr) {
    loop_ = options_.loop;
  } else {
    own_loop_ = std::make_unique<MainLoop>();
    loop_ = own_loop_.get();
  }

  ScopeOptions sopts;
  sopts.name = options_.name;
  sopts.width = 64;
  sopts.height = 32;
  sopts.buffer_capacity = options_.buffer_capacity;
  scope_ = std::make_unique<Scope>(loop_, sopts);
  // Router fan-out workers and route-table builds touch this scope from
  // other threads while the recorder loop ticks it.
  scope_->SetConcurrent(true);
  scope_->SetBufferedTap(
      [this](std::string_view name, int64_t time_ms, double value) {
        if (log_.Append(name, time_ms, value)) {
          captured_ += 1;
        }
      },
      TapMode::kEverySample);
  scope_->SetPollingMode(options_.poll_period_ms);

  loop_->Invoke([this] { InstallOnLoop(); });
  if (own_loop_ != nullptr) {
    thread_ = std::thread([this] { own_loop_->Run(); });
  }
  running_ = true;
  return true;
}

void Recorder::InstallOnLoop() {
  scope_->StartPolling();
  publish_timer_ = loop_->AddTimeoutMs(options_.poll_period_ms,
                                       [this]() {
                                         PublishTick();
                                         return true;
                                       });
}

void Recorder::PublishTick() {
  log_.MaybeFsync(scope_->NowMs());
  if (log_.degraded()) {
    // Disk-full retry: a successful seal exits coalesced capture.
    log_.SealNow();
  }
  const ExtentLog::Stats& s = log_.stats();
  stats_.samples_captured = captured_;
  stats_.extents_sealed = s.extents_sealed;
  stats_.extents_recovered = s.extents_recovered;
  stats_.extents_truncated = s.extents_truncated;
  stats_.extents_dropped = s.extents_dropped;
  stats_.capture_bytes = s.capture_bytes;
  stats_.seal_failures = s.seal_failures;
  stats_.fsync_failures = s.fsync_failures;
  stats_.degraded_entered = s.degraded_entered;
  stats_.samples_coalesced = s.samples_coalesced;
  stats_.degraded = log_.degraded() ? 1 : 0;
}

void Recorder::TeardownOnLoop() {
  if (publish_timer_ != 0) {
    loop_->Remove(publish_timer_);
    publish_timer_ = 0;
  }
  // Final drain: anything still queued in the scope's buffers/spans routes
  // through the tap before the log seals.
  scope_->TickOnce();
  scope_->StopPolling();
  log_.SealNow();
  PublishTick();
}

void Recorder::FlushNow() {
  if (!running_) {
    return;
  }
  if (own_loop_ != nullptr) {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    loop_->Invoke([this, &mu, &cv, &done] {
      scope_->TickOnce();
      log_.SealNow();
      PublishTick();
      std::lock_guard<std::mutex> lock(mu);
      done = true;
      cv.notify_one();
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&done] { return done; });
  } else {
    scope_->TickOnce();
    log_.SealNow();
    PublishTick();
  }
}

void Recorder::Stop() {
  if (!running_) {
    return;
  }
  if (own_loop_ != nullptr) {
    loop_->Invoke([this] {
      TeardownOnLoop();
      loop_->Quit();
    });
    thread_.join();
  } else {
    TeardownOnLoop();
  }
  log_.Close();
  scope_.reset();
  own_loop_.reset();
  loop_ = nullptr;
  running_ = false;
}

}  // namespace gscope
