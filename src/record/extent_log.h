// Crash-safe columnar flight-recorder log (ROADMAP item 3).
//
// gscope shows live signals; production debugging needs "what happened at
// 04:13" — and a recorder is only useful if the file survives the very crash
// it exists to explain.  ExtentLog appends samples to a single on-disk file
// organized as a ring of fixed-size extents, modeled on DataSeries'
// extent-structured logs (PAPERS.md): each extent is a self-contained,
// CRC32C-sealed unit holding per-signal column blocks with a (signal,
// time-range) index, so a replayer can skip whole extents — and whole
// columns — that cannot intersect a query window.
//
// File layout (all integers little-endian):
//
//   superblock (16 bytes, written once at creation):
//     0  1  magic0 = 0xEF        8  4  max_extents (u32)
//     1  1  magic1 = 0x53 'S'   12  4  crc32c of bytes [0,12)
//     2  1  version = 1
//     3  1  pad = 0
//     4  4  extent_bytes (u32)
//
//   extent slot i at offset 16 + i*extent_bytes; slot header (32 bytes):
//     0  1  magic0 = 0xEF       8   4  crc32c of the payload
//     1  1  magic1 = 0x47 'G'   12  8  seq (u64, from 1, never reused)
//     2  1  version = 1         20  8  base_time_ms (i64)
//     3  1  flags = 0           28  4  reserved = 0
//     4  4  payload_len (u32)
//
//   extent payload:
//     u32 dict_count, u32 block_count
//     dict_count  x { u32 id, u32 name_len, name bytes }   (PR 7 dict shape)
//     block_count x { u32 id, u32 count, u32 offset,       (column index;
//                     i32 min_delta_ms, i32 max_delta_ms }  offset into the
//                                                           record area)
//     record area: per block, count x { u32 id, i32 delta_ms, f64 value }
//                                                           (16-byte records)
//
// Extents are self-contained exactly like PR 7's wire frames: every signal
// id used in an extent is (re)declared in that extent's dict, so recovery
// never depends on earlier extents having survived.  Records reuse the wire
// protocol's 16-byte {id, delta, value} shape — the id is redundant inside a
// column but keeps the record layout identical across disk and wire.
//
// Crash safety:
//   * An extent is sealed by a single contiguous pwrite of header+payload
//     whose header carries the payload CRC and a monotone seq — the commit
//     point.  A crash mid-write leaves a slot whose CRC cannot validate:
//     that slot IS the torn tail, and it is the only thing a crash can lose.
//   * Open() runs recovery: scan every slot, validate CRCs, adopt the
//     highest valid seq, and ftruncate exactly the torn physical tail (a
//     torn slot in the middle of the ring — an in-place overwrite that
//     tore — is not truncated; it is simply the next write target, which is
//     also the oldest position).  Sealed extents are never touched.
//   * Retention is a ring: extent seq s lives in slot s % max_extents, so a
//     full ring overwrites the oldest extent in place.
//   * Disk full degrades, never crashes and never blocks ingest: first the
//     ring wraps early (drop-oldest: the oldest sealed extent's slot is
//     reused, counted in extents_dropped), and if even that write fails the
//     log enters coalesced capture — only the newest record per signal is
//     retained in memory, counted per fold — until a later seal succeeds.
//   * The fsync policy knob trades durability for throughput: kNone (page
//     cache only), kExtent (fsync after every sealed extent), kInterval
//     (fsync at most once per fsync_interval_ms, driven by the owner's
//     clock).  fsync failure is counted, never fatal.
//
// Every file operation consults net/fault_injector.h (FaultOp::kFile*), so
// each recovery path above is deterministically reachable from (seed, rules).
//
// Steady-state Append() allocates nothing: names intern once (first
// occurrence only), column buffers and the seal scratch retain capacity
// across extents, and the slot write is one pwrite from the scratch.
//
// Threading: single-owner.  All methods must be called from one thread at a
// time (the Recorder's loop); ExtentReader instances are independent and may
// read a file an ExtentLog is still appending to (a slot being overwritten
// mid-read fails its CRC and is skipped, like any torn extent).
#ifndef GSCOPE_RECORD_EXTENT_LOG_H_
#define GSCOPE_RECORD_EXTENT_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/string_index.h"

namespace gscope {

enum class FsyncPolicy : uint8_t { kNone = 0, kExtent = 1, kInterval = 2 };

namespace record {
constexpr uint8_t kSuperMagic0 = 0xEF;
constexpr uint8_t kSuperMagic1 = 0x53;
constexpr uint8_t kExtentMagic0 = 0xEF;
constexpr uint8_t kExtentMagic1 = 0x47;
constexpr uint8_t kVersion = 1;
constexpr size_t kSuperBytes = 16;
constexpr size_t kExtentHeaderBytes = 32;
constexpr size_t kRecordBytes = 16;      // {u32 id, i32 delta_ms, f64 value}
constexpr size_t kDictFixedBytes = 8;    // {u32 id, u32 name_len} + name
constexpr size_t kBlockIndexBytes = 20;  // {id, count, offset, min, max}
constexpr size_t kMinExtentBytes = 256;
}  // namespace record

struct ExtentLogOptions {
  // Slot size, header included.  Values below kMinExtentBytes are clamped.
  size_t extent_bytes = 64 * 1024;
  // Ring retention cap: at most this many extents on disk; older extents
  // are overwritten in place.  Clamped to >= 1.
  size_t max_extents = 256;
  FsyncPolicy fsync_policy = FsyncPolicy::kNone;
  // kInterval: minimum ms between fsyncs (the owner drives MaybeFsync with
  // its clock).
  int64_t fsync_interval_ms = 1000;
};

class ExtentLog {
 public:
  // Plain tallies: the log is single-owner; the Recorder mirrors these into
  // relaxed atomics once per tick for cross-thread readers.
  struct Stats {
    int64_t appends = 0;            // records accepted (coalesced included)
    int64_t extents_sealed = 0;     // slots committed with a valid CRC
    int64_t extents_recovered = 0;  // valid extents found by Open()
    int64_t extents_truncated = 0;  // torn physical tails ftruncated by Open()
    int64_t extents_dropped = 0;    // sealed extents lost to disk-full wrap
                                    // or staged extents abandoned unsealable
    int64_t capture_bytes = 0;      // bytes pwritten (super + extents)
    int64_t seal_failures = 0;      // seal attempts that could not commit
    int64_t fsyncs = 0;
    int64_t fsync_failures = 0;
    int64_t degraded_entered = 0;   // transitions into coalesced capture
    int64_t samples_coalesced = 0;  // records folded away while degraded
  };

  explicit ExtentLog(ExtentLogOptions options = {});
  ~ExtentLog();

  ExtentLog(const ExtentLog&) = delete;
  ExtentLog& operator=(const ExtentLog&) = delete;

  // Opens `path` for appending, creating it when absent, and runs recovery
  // on what exists (header comment).  False on open/superblock failure; a
  // pre-existing file whose superblock does not validate is refused, never
  // clobbered.  The superblock's geometry wins over `options` for an
  // existing file.
  bool Open(const std::string& path);
  bool is_open() const { return fd_ >= 0; }
  // Seals the staged extent (if any) and closes the file.
  void Close();

  // Appends one sample.  Zero allocations once `name` has been seen.
  // Returns false only when closed.  Never blocks beyond the file write
  // itself; disk-full degrades per the header comment.
  bool Append(std::string_view name, int64_t time_ms, double value);

  // Seals the staged extent now (no-op when nothing is staged).  While
  // degraded this doubles as the disk-full retry: success leaves degraded
  // capture.  Returns false when a non-empty stage could not be committed.
  bool SealNow();

  // kInterval fsync pacing; the owner calls this with its clock's ms time.
  void MaybeFsync(int64_t now_ms);

  // True while in coalesced (disk-full) capture.
  bool degraded() const { return degraded_; }

  const Stats& stats() const { return stats_; }
  const std::string& path() const { return path_; }
  const ExtentLogOptions& options() const { return options_; }
  // Staged (unsealed) records in the open extent.
  size_t staged_records() const { return staged_records_; }
  uint64_t next_seq() const { return next_seq_; }

 private:
  struct Column {
    std::string recs;        // count x kRecordBytes, capacity retained
    uint32_t count = 0;
    int32_t min_delta = 0;
    int32_t max_delta = 0;
    uint64_t epoch = 0;      // == extent_epoch_ when live in the open extent
  };

  bool WriteAt(int64_t offset, const char* data, size_t len, bool* enospc);
  bool Fsync();
  void ResetStage();
  // Assembles the staged extent into seal_buf_ (header + payload).
  void BuildSealBuffer();
  // Points next_slot_ at the oldest live slot after a failed extend
  // (disk-full drop-oldest).
  bool WrapEarly();
  void EnterDegraded();

  ExtentLogOptions options_;
  std::string path_;
  int fd_ = -1;

  // Name interning (allocates only on first occurrence of a name).
  StringKeyedMap<uint32_t> ids_;
  std::vector<std::string> names_;  // by id - 1
  std::string memo_name_;           // last-name memo (WireEncoder pattern)
  uint32_t memo_id_ = 0;

  // Staged (open) extent.
  std::vector<Column> cols_;        // by id - 1; capacity retained
  std::vector<uint32_t> used_ids_;  // ids live in the open extent, in order
  uint64_t extent_epoch_ = 1;
  size_t staged_payload_bytes_ = 0;  // payload size if sealed now
  size_t staged_records_ = 0;
  int64_t base_time_ms_ = 0;
  bool has_base_ = false;

  // Ring state.
  uint64_t next_seq_ = 1;
  uint32_t next_slot_ = 0;
  uint32_t physical_slots_ = 0;  // slots currently present in the file
  uint32_t ring_cap_ = 1;        // may shrink below max_extents on disk full

  bool degraded_ = false;
  bool dirty_ = false;           // unsynced writes (kInterval pacing)
  int64_t last_fsync_ms_ = 0;
  bool fsync_clock_primed_ = false;

  std::string seal_buf_;  // header + payload assembly scratch (reused)
  Stats stats_;
};

// One decoded sample from a recorded window; `name` indexes
// ExtentReader::names() (interned across extents).
struct ReplayRecord {
  int64_t time_ms = 0;
  double value = 0.0;
  uint32_t name = 0;
};

// Read-only view of an ExtentLog file: scans and validates every slot at
// Open (without mutating the file — no truncation), then serves time-window
// queries using the per-extent and per-block time-range indexes.
class ExtentReader {
 public:
  struct ExtentInfo {
    uint64_t seq = 0;
    uint32_t slot = 0;
    int64_t min_time_ms = 0;
    int64_t max_time_ms = 0;
    uint32_t records = 0;
  };

  bool Open(const std::string& path);
  // Valid extents, ascending seq.
  const std::vector<ExtentInfo>& extents() const { return extents_; }
  // Slots that failed validation (torn tail / mid-overwrite tears).
  int64_t torn_slots() const { return torn_slots_; }
  const std::vector<std::string>& names() const { return names_; }
  // Earliest/latest recorded timestamps (0/0 when empty).
  int64_t min_time_ms() const { return min_time_ms_; }
  int64_t max_time_ms() const { return max_time_ms_; }

  // Appends every record with t0 <= time_ms <= t1 to `out`, sorted by
  // time_ms (stable: extent seq, then column order, then record order break
  // ties).  Returns false on I/O failure mid-read.
  bool ReadWindow(int64_t t0, int64_t t1, std::vector<ReplayRecord>* out);

 private:
  bool LoadExtent(uint32_t slot, std::string* buf) const;

  std::string path_;
  size_t extent_bytes_ = 0;
  size_t slot_count_ = 0;
  std::vector<ExtentInfo> extents_;
  int64_t torn_slots_ = 0;
  StringKeyedMap<uint32_t> name_index_;
  std::vector<std::string> names_;
  int64_t min_time_ms_ = 0;
  int64_t max_time_ms_ = 0;
};

}  // namespace gscope

#endif  // GSCOPE_RECORD_EXTENT_LOG_H_
