#include "record/extent_log.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "net/fault_injector.h"
#include "net/frame_codec.h"

namespace gscope {

using wire::AppendI32;
using wire::AppendU32;
using wire::Crc32c;
using wire::LoadF64;
using wire::LoadI32;
using wire::LoadI64;
using wire::LoadU32;

namespace {

uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// pread that survives EINTR and short reads; returns bytes read (< len only
// at EOF), -1 on error.
ssize_t ReadAt(int fd, int64_t offset, char* buf, size_t len) {
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::pread(fd, buf + got, len - got, offset + static_cast<int64_t>(got));
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) break;  // EOF
    got += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(got);
}

struct SlotHeader {
  uint32_t payload_len = 0;
  uint32_t crc = 0;
  uint64_t seq = 0;
  int64_t base_time_ms = 0;
};

// Validates the fixed fields of a slot header (not the payload CRC).
bool ParseSlotHeader(const char* h, size_t extent_bytes, SlotHeader* out) {
  if (static_cast<uint8_t>(h[0]) != record::kExtentMagic0 ||
      static_cast<uint8_t>(h[1]) != record::kExtentMagic1 ||
      static_cast<uint8_t>(h[2]) != record::kVersion) {
    return false;
  }
  out->payload_len = LoadU32(h + 4);
  out->crc = LoadU32(h + 8);
  out->seq = LoadU64(h + 12);
  out->base_time_ms = LoadI64(h + 20);
  return out->seq != 0 &&
         out->payload_len <= extent_bytes - record::kExtentHeaderBytes;
}

// Shared superblock scan used by writer recovery and the reader.  Returns
// false when the superblock is absent or invalid; *fresh distinguishes "file
// too short to ever have held one" (safe to re-init) from "present but
// corrupt" (refuse).
bool ReadSuperblock(int fd, size_t* extent_bytes, size_t* max_extents,
                    bool* fresh) {
  char super[record::kSuperBytes];
  ssize_t n = ReadAt(fd, 0, super, sizeof(super));
  if (n < static_cast<ssize_t>(sizeof(super))) {
    *fresh = true;
    return false;
  }
  *fresh = false;
  if (static_cast<uint8_t>(super[0]) != record::kSuperMagic0 ||
      static_cast<uint8_t>(super[1]) != record::kSuperMagic1 ||
      static_cast<uint8_t>(super[2]) != record::kVersion ||
      Crc32c(0, super, 12) != LoadU32(super + 12)) {
    return false;
  }
  *extent_bytes = LoadU32(super + 4);
  *max_extents = LoadU32(super + 8);
  return *extent_bytes >= record::kMinExtentBytes && *max_extents >= 1;
}

// Validates one slot end-to-end (header + payload CRC + payload structure).
// `data` holds the whole slot.  Fills *hdr on success.
bool ValidateSlot(const char* data, size_t extent_bytes, SlotHeader* hdr) {
  if (!ParseSlotHeader(data, extent_bytes, hdr)) {
    return false;
  }
  const char* payload = data + record::kExtentHeaderBytes;
  if (Crc32c(0, payload, hdr->payload_len) != hdr->crc) {
    return false;
  }
  // Structural walk, mirroring FrameDecoder::Dispatch: a CRC-valid payload
  // assembled by this code always passes, but recovery must never trust
  // disk bytes enough to index out of bounds.
  size_t len = hdr->payload_len;
  if (len < 8) return false;
  uint32_t dict_count = LoadU32(payload);
  uint32_t block_count = LoadU32(payload + 4);
  size_t off = 8;
  for (uint32_t i = 0; i < dict_count; ++i) {
    if (len - off < record::kDictFixedBytes) return false;
    uint32_t name_len = LoadU32(payload + off + 4);
    if (name_len > wire::kMaxNameBytes ||
        len - off - record::kDictFixedBytes < name_len) {
      return false;
    }
    off += record::kDictFixedBytes + name_len;
  }
  if ((len - off) / record::kBlockIndexBytes < block_count) return false;
  size_t rec_area = off + block_count * record::kBlockIndexBytes;
  size_t rec_bytes = len - rec_area;
  if (rec_bytes % record::kRecordBytes != 0) return false;
  size_t claimed = 0;
  for (uint32_t i = 0; i < block_count; ++i) {
    const char* idx = payload + off + i * record::kBlockIndexBytes;
    uint32_t count = LoadU32(idx + 4);
    uint32_t rec_off = LoadU32(idx + 8);
    if (rec_off != claimed) return false;  // blocks are dense and in order
    claimed += static_cast<size_t>(count) * record::kRecordBytes;
  }
  return claimed == rec_bytes;
}

}  // namespace

ExtentLog::ExtentLog(ExtentLogOptions options) : options_(options) {
  if (options_.extent_bytes < record::kMinExtentBytes) {
    options_.extent_bytes = record::kMinExtentBytes;
  }
  if (options_.max_extents < 1) {
    options_.max_extents = 1;
  }
  ring_cap_ = static_cast<uint32_t>(options_.max_extents);
}

ExtentLog::~ExtentLog() { Close(); }

bool ExtentLog::WriteAt(int64_t offset, const char* data, size_t len,
                        bool* enospc) {
  if (enospc != nullptr) *enospc = false;
  size_t done = 0;
  while (done < len) {
    size_t want = len - done;
    if (FaultInjector::Shim(FaultOp::kFileWrite, fd_, &want)) {
      if (errno == EINTR) continue;
      if (enospc != nullptr && errno == ENOSPC) *enospc = true;
      return false;
    }
    ssize_t n = ::pwrite(fd_, data + done, want,
                         offset + static_cast<int64_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (enospc != nullptr && errno == ENOSPC) *enospc = true;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  stats_.capture_bytes += static_cast<int64_t>(len);
  dirty_ = true;
  return true;
}

bool ExtentLog::Fsync() {
  size_t zero = 0;
  if (FaultInjector::Shim(FaultOp::kFileSync, fd_, &zero) || ::fsync(fd_) != 0) {
    stats_.fsync_failures += 1;
    return false;
  }
  stats_.fsyncs += 1;
  dirty_ = false;
  return true;
}

bool ExtentLog::Open(const std::string& path) {
  Close();
  size_t zero = 0;
  if (FaultInjector::Shim(FaultOp::kFileOpen, -1, &zero)) {
    return false;
  }
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return false;
  }
  path_ = path;

  struct stat st {};
  if (::fstat(fd_, &st) != 0) {
    Close();
    return false;
  }
  size_t file_extent_bytes = options_.extent_bytes;
  size_t file_max_extents = options_.max_extents;
  bool fresh = st.st_size == 0;
  if (!fresh) {
    bool short_file = false;
    if (!ReadSuperblock(fd_, &file_extent_bytes, &file_max_extents, &short_file)) {
      if (!short_file) {
        // A real superblock that does not validate: refuse rather than
        // clobber what might be someone else's file.
        Close();
        return false;
      }
      // Shorter than a superblock: a crash mid-creation.  Re-init.
      fresh = true;
    }
  }
  options_.extent_bytes = file_extent_bytes;
  options_.max_extents = file_max_extents;
  ring_cap_ = static_cast<uint32_t>(options_.max_extents);

  if (fresh) {
    std::string super;
    super.push_back(static_cast<char>(record::kSuperMagic0));
    super.push_back(static_cast<char>(record::kSuperMagic1));
    super.push_back(static_cast<char>(record::kVersion));
    super.push_back(0);
    AppendU32(super, static_cast<uint32_t>(options_.extent_bytes));
    AppendU32(super, static_cast<uint32_t>(options_.max_extents));
    AppendU32(super, Crc32c(0, super.data(), super.size()));
    size_t dlen = 0;
    if (FaultInjector::Shim(FaultOp::kFileTruncate, fd_, &dlen) ||
        ::ftruncate(fd_, 0) != 0 ||
        !WriteAt(0, super.data(), super.size(), nullptr)) {
      Close();
      return false;
    }
    physical_slots_ = 0;
    next_seq_ = 1;
    next_slot_ = 0;
    ResetStage();
    return true;
  }

  // -- Recovery: scan every slot, keep the valid ones, truncate the torn
  // physical tail exactly once, and resume after the highest seq.
  const int64_t super_end = static_cast<int64_t>(record::kSuperBytes);
  const int64_t data_bytes = st.st_size - super_end;
  const size_t eb = options_.extent_bytes;
  // Slots with at least one byte present (a torn tail extends the count).
  size_t touched_slots = static_cast<size_t>((data_bytes + static_cast<int64_t>(eb) - 1) /
                                             static_cast<int64_t>(eb));
  std::string slot_buf;
  uint64_t max_seq = 0;
  uint32_t max_seq_slot = 0;
  std::vector<bool> valid(touched_slots, false);
  for (size_t i = 0; i < touched_slots; ++i) {
    slot_buf.assign(eb, '\0');
    int64_t off = super_end + static_cast<int64_t>(i * eb);
    ssize_t got = ReadAt(fd_, off, slot_buf.data(), eb);
    SlotHeader hdr;
    if (got == static_cast<ssize_t>(eb) && ValidateSlot(slot_buf.data(), eb, &hdr)) {
      valid[i] = true;
      stats_.extents_recovered += 1;
      if (hdr.seq > max_seq) {
        max_seq = hdr.seq;
        max_seq_slot = static_cast<uint32_t>(i);
      }
    }
  }
  // Truncate exactly the torn physical tail: everything past the last valid
  // slot in the trailing run of invalid slots.  (An invalid slot followed by
  // a valid one is a mid-ring overwrite tear: left in place, skipped by
  // readers, and overwritten by the next seal.)
  size_t keep_slots = touched_slots;
  while (keep_slots > 0 && !valid[keep_slots - 1]) {
    --keep_slots;
  }
  int64_t keep_end = super_end + static_cast<int64_t>(keep_slots * eb);
  if (keep_end < st.st_size) {
    size_t dlen = 0;
    if (FaultInjector::Shim(FaultOp::kFileTruncate, fd_, &dlen) ||
        ::ftruncate(fd_, keep_end) != 0) {
      // Could not trim the tear; the torn bytes stay but every reader
      // CRC-skips them, so this is a cosmetic failure.
    } else {
      stats_.extents_truncated += 1;
    }
  }
  physical_slots_ = static_cast<uint32_t>(keep_slots);
  if (max_seq == 0) {
    next_seq_ = 1;
    next_slot_ = 0;
  } else {
    next_seq_ = max_seq + 1;
    next_slot_ = max_seq_slot + 1;
    if (next_slot_ >= ring_cap_) next_slot_ = 0;
  }
  ResetStage();
  return true;
}

void ExtentLog::Close() {
  if (fd_ < 0) {
    return;
  }
  SealNow();
  if (options_.fsync_policy != FsyncPolicy::kNone && dirty_) {
    Fsync();
  }
  ::close(fd_);
  fd_ = -1;
  path_.clear();
  ResetStage();
  ids_.clear();
  names_.clear();
  cols_.clear();
  memo_name_.clear();
  memo_id_ = 0;
  degraded_ = false;
  next_seq_ = 1;
  next_slot_ = 0;
  physical_slots_ = 0;
  ring_cap_ = static_cast<uint32_t>(options_.max_extents);
}

void ExtentLog::ResetStage() {
  // Columns are reset lazily through the epoch; the vectors keep capacity.
  used_ids_.clear();
  extent_epoch_ += 1;
  staged_payload_bytes_ = 8;  // dict_count + block_count
  staged_records_ = 0;
  has_base_ = false;
  base_time_ms_ = 0;
}

bool ExtentLog::Append(std::string_view name, int64_t time_ms, double value) {
  if (fd_ < 0) {
    return false;
  }
  // Resolve the id: last-name memo, then the interned index (allocates only
  // for a never-seen name).
  uint32_t id;
  if (memo_id_ != 0 && name == memo_name_) {
    id = memo_id_;
  } else {
    auto it = ids_.find(name);
    if (it != ids_.end()) {
      id = it->second;
    } else {
      id = static_cast<uint32_t>(names_.size()) + 1;
      names_.emplace_back(name);
      ids_.emplace(names_.back(), id);
      cols_.emplace_back();
    }
    memo_name_.assign(name.data(), name.size());
    memo_id_ = id;
  }

  if (!has_base_) {
    has_base_ = true;
    base_time_ms_ = time_ms;
  }
  int64_t delta = time_ms - base_time_ms_;
  if (delta < INT32_MIN || delta > INT32_MAX) {
    // The delta no longer fits the 16-byte record: seal and re-base, exactly
    // like WireEncoder seals a frame early.
    SealNow();
    has_base_ = true;
    base_time_ms_ = time_ms;
    delta = 0;
  }
  const int32_t delta32 = static_cast<int32_t>(delta);

  Column& col = cols_[id - 1];
  const bool first_use = col.epoch != extent_epoch_;
  if (degraded_) {
    // Coalesced capture: disk full, keep only the newest record per signal
    // in memory until a seal succeeds.  Never crash, never block ingest.
    if (first_use) {
      col.epoch = extent_epoch_;
      col.recs.clear();
      col.count = 0;
      col.min_delta = delta32;
      col.max_delta = delta32;
      used_ids_.push_back(id);
      staged_payload_bytes_ += record::kDictFixedBytes + names_[id - 1].size() +
                               record::kBlockIndexBytes;
    }
    char rec[record::kRecordBytes];
    std::memcpy(rec, &id, sizeof(id));
    std::memcpy(rec + 4, &delta32, sizeof(delta32));
    std::memcpy(rec + 8, &value, sizeof(value));
    if (col.count == 0) {
      col.recs.append(rec, sizeof(rec));
      col.count = 1;
      staged_payload_bytes_ += record::kRecordBytes;
      staged_records_ += 1;
    } else {
      col.recs.replace(col.recs.size() - record::kRecordBytes,
                       record::kRecordBytes, rec, sizeof(rec));
      stats_.samples_coalesced += 1;
    }
    col.min_delta = std::min(col.min_delta, delta32);
    col.max_delta = std::max(col.max_delta, delta32);
    stats_.appends += 1;
    return true;
  }

  // Would this record (plus its column's dict + index entries on first use)
  // overflow the extent?  Seal first, then stage into the fresh extent.
  size_t grow = record::kRecordBytes;
  if (first_use) {
    grow += record::kDictFixedBytes + names_[id - 1].size() +
            record::kBlockIndexBytes;
  }
  const size_t capacity = options_.extent_bytes - record::kExtentHeaderBytes;
  if (staged_payload_bytes_ + grow > capacity && staged_records_ > 0) {
    SealNow();
    if (!has_base_) {
      has_base_ = true;
      base_time_ms_ = time_ms;
    }
    delta = time_ms - base_time_ms_;
    return Append(name, time_ms, value);  // restage against the new extent
  }

  Column& c = cols_[id - 1];
  if (c.epoch != extent_epoch_) {
    c.epoch = extent_epoch_;
    c.recs.clear();
    c.count = 0;
    c.min_delta = delta32;
    c.max_delta = delta32;
    used_ids_.push_back(id);
    staged_payload_bytes_ += record::kDictFixedBytes + names_[id - 1].size() +
                             record::kBlockIndexBytes;
  }
  char rec[record::kRecordBytes];
  std::memcpy(rec, &id, sizeof(id));
  std::memcpy(rec + 4, &delta32, sizeof(delta32));
  std::memcpy(rec + 8, &value, sizeof(value));
  c.recs.append(rec, sizeof(rec));
  c.count += 1;
  c.min_delta = std::min(c.min_delta, delta32);
  c.max_delta = std::max(c.max_delta, delta32);
  staged_payload_bytes_ += record::kRecordBytes;
  staged_records_ += 1;
  stats_.appends += 1;
  return true;
}

void ExtentLog::BuildSealBuffer() {
  seal_buf_.clear();
  // Header placeholder; filled after the payload CRC is known.
  seal_buf_.append(record::kExtentHeaderBytes, '\0');
  AppendU32(seal_buf_, static_cast<uint32_t>(used_ids_.size()));  // dict_count
  AppendU32(seal_buf_, static_cast<uint32_t>(used_ids_.size()));  // block_count
  for (uint32_t id : used_ids_) {
    AppendU32(seal_buf_, id);
    const std::string& name = names_[id - 1];
    AppendU32(seal_buf_, static_cast<uint32_t>(name.size()));
    seal_buf_.append(name);
  }
  uint32_t rec_off = 0;
  for (uint32_t id : used_ids_) {
    const Column& col = cols_[id - 1];
    AppendU32(seal_buf_, id);
    AppendU32(seal_buf_, col.count);
    AppendU32(seal_buf_, rec_off);
    AppendI32(seal_buf_, col.min_delta);
    AppendI32(seal_buf_, col.max_delta);
    rec_off += col.count * static_cast<uint32_t>(record::kRecordBytes);
  }
  for (uint32_t id : used_ids_) {
    seal_buf_.append(cols_[id - 1].recs);
  }
  const size_t payload_len = seal_buf_.size() - record::kExtentHeaderBytes;
  const uint32_t crc =
      Crc32c(0, seal_buf_.data() + record::kExtentHeaderBytes, payload_len);
  char* h = seal_buf_.data();
  h[0] = static_cast<char>(record::kExtentMagic0);
  h[1] = static_cast<char>(record::kExtentMagic1);
  h[2] = static_cast<char>(record::kVersion);
  h[3] = 0;
  uint32_t plen32 = static_cast<uint32_t>(payload_len);
  std::memcpy(h + 4, &plen32, sizeof(plen32));
  std::memcpy(h + 8, &crc, sizeof(crc));
  std::memcpy(h + 12, &next_seq_, sizeof(next_seq_));
  std::memcpy(h + 20, &base_time_ms_, sizeof(base_time_ms_));
  std::memset(h + 28, 0, 4);
  // Pad to the full slot: extents are physically fixed-size, so the file is
  // always superblock + n*extent_bytes and a short final slot can only mean
  // a torn write.  The scratch retains extent_bytes capacity across seals.
  seal_buf_.resize(options_.extent_bytes, '\0');
}

bool ExtentLog::WrapEarly() {
  if (physical_slots_ == 0) {
    return false;  // not even one slot exists: nowhere to wrap into
  }
  // Shrink the ring to what physically fits; the next write lands on the
  // oldest live slot (slots filled 0..physical-1 in seq order pre-wrap).
  ring_cap_ = physical_slots_;
  next_slot_ = next_slot_ % ring_cap_;
  stats_.extents_dropped += 1;
  return true;
}

void ExtentLog::EnterDegraded() {
  if (!degraded_) {
    degraded_ = true;
    stats_.degraded_entered += 1;
  }
}

bool ExtentLog::SealNow() {
  if (fd_ < 0 || staged_records_ == 0) {
    return true;
  }
  BuildSealBuffer();
  const int64_t offset =
      static_cast<int64_t>(record::kSuperBytes) +
      static_cast<int64_t>(next_slot_) * static_cast<int64_t>(options_.extent_bytes);
  const bool extending = next_slot_ >= physical_slots_;
  bool enospc = false;
  bool ok = WriteAt(offset, seal_buf_.data(), seal_buf_.size(), &enospc);
  if (!ok && enospc && extending && WrapEarly()) {
    // Disk full while growing the file: drop the oldest extent (its slot is
    // overwritten) and retry once in place.
    const int64_t retry_off =
        static_cast<int64_t>(record::kSuperBytes) +
        static_cast<int64_t>(next_slot_) * static_cast<int64_t>(options_.extent_bytes);
    ok = WriteAt(retry_off, seal_buf_.data(), seal_buf_.size(), &enospc);
  }
  if (!ok) {
    stats_.seal_failures += 1;
    if (enospc) {
      // Nothing writable at all: downgrade to coalesced capture.  The staged
      // extent stays staged (already last-wins once degraded) and the next
      // SealNow retries.
      EnterDegraded();
      return false;
    }
    // Non-ENOSPC write failure (errno storm, EIO): drop this extent's data
    // rather than wedging capture behind a dead disk.
    stats_.extents_dropped += 1;
    ResetStage();
    return false;
  }
  if (extending) {
    physical_slots_ = next_slot_ + 1;
  }
  next_slot_ += 1;
  if (next_slot_ >= ring_cap_) next_slot_ = 0;
  next_seq_ += 1;
  stats_.extents_sealed += 1;
  if (degraded_) {
    degraded_ = false;  // the disk accepts writes again: full capture resumes
  }
  ResetStage();
  if (options_.fsync_policy == FsyncPolicy::kExtent) {
    Fsync();
  }
  return true;
}

void ExtentLog::MaybeFsync(int64_t now_ms) {
  if (fd_ < 0 || options_.fsync_policy != FsyncPolicy::kInterval || !dirty_) {
    return;
  }
  if (!fsync_clock_primed_) {
    fsync_clock_primed_ = true;
    last_fsync_ms_ = now_ms;
    return;
  }
  if (now_ms - last_fsync_ms_ >= options_.fsync_interval_ms) {
    last_fsync_ms_ = now_ms;
    Fsync();
  }
}

// -- ExtentReader -------------------------------------------------------------

bool ExtentReader::Open(const std::string& path) {
  extents_.clear();
  names_.clear();
  name_index_.clear();
  torn_slots_ = 0;
  min_time_ms_ = 0;
  max_time_ms_ = 0;

  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return false;
  }
  path_ = path;
  size_t max_extents = 0;
  bool fresh = false;
  if (!ReadSuperblock(fd, &extent_bytes_, &max_extents, &fresh)) {
    ::close(fd);
    return false;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return false;
  }
  const int64_t data_bytes = st.st_size - static_cast<int64_t>(record::kSuperBytes);
  slot_count_ = data_bytes <= 0
                    ? 0
                    : static_cast<size_t>((data_bytes + static_cast<int64_t>(extent_bytes_) - 1) /
                                          static_cast<int64_t>(extent_bytes_));
  std::string buf;
  bool have_time = false;
  for (size_t i = 0; i < slot_count_; ++i) {
    buf.assign(extent_bytes_, '\0');
    ssize_t got = ReadAt(fd, static_cast<int64_t>(record::kSuperBytes + i * extent_bytes_),
                         buf.data(), extent_bytes_);
    SlotHeader hdr;
    if (got != static_cast<ssize_t>(extent_bytes_) ||
        !ValidateSlot(buf.data(), extent_bytes_, &hdr)) {
      torn_slots_ += 1;
      continue;
    }
    const char* payload = buf.data() + record::kExtentHeaderBytes;
    uint32_t dict_count = LoadU32(payload);
    uint32_t block_count = LoadU32(payload + 4);
    size_t off = 8;
    for (uint32_t d = 0; d < dict_count; ++d) {
      off += record::kDictFixedBytes + LoadU32(payload + off + 4);
    }
    ExtentInfo info;
    info.seq = hdr.seq;
    info.slot = static_cast<uint32_t>(i);
    bool first = true;
    for (uint32_t b = 0; b < block_count; ++b) {
      const char* idx = payload + off + b * record::kBlockIndexBytes;
      uint32_t count = LoadU32(idx + 4);
      int64_t lo = hdr.base_time_ms + LoadI32(idx + 12);
      int64_t hi = hdr.base_time_ms + LoadI32(idx + 16);
      info.records += count;
      if (first) {
        info.min_time_ms = lo;
        info.max_time_ms = hi;
        first = false;
      } else {
        info.min_time_ms = std::min(info.min_time_ms, lo);
        info.max_time_ms = std::max(info.max_time_ms, hi);
      }
    }
    if (block_count > 0) {
      if (!have_time) {
        min_time_ms_ = info.min_time_ms;
        max_time_ms_ = info.max_time_ms;
        have_time = true;
      } else {
        min_time_ms_ = std::min(min_time_ms_, info.min_time_ms);
        max_time_ms_ = std::max(max_time_ms_, info.max_time_ms);
      }
    }
    extents_.push_back(info);
  }
  ::close(fd);
  std::sort(extents_.begin(), extents_.end(),
            [](const ExtentInfo& a, const ExtentInfo& b) { return a.seq < b.seq; });
  return true;
}

bool ExtentReader::LoadExtent(uint32_t slot, std::string* buf) const {
  int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return false;
  }
  buf->assign(extent_bytes_, '\0');
  ssize_t got = ReadAt(fd, static_cast<int64_t>(record::kSuperBytes + slot * extent_bytes_),
                       buf->data(), extent_bytes_);
  ::close(fd);
  return got == static_cast<ssize_t>(extent_bytes_);
}

bool ExtentReader::ReadWindow(int64_t t0, int64_t t1,
                              std::vector<ReplayRecord>* out) {
  const size_t base = out->size();
  std::string buf;
  std::vector<uint32_t> local_to_global;  // extent-local id -> names_ index
  for (const ExtentInfo& info : extents_) {
    if (info.records == 0 || info.max_time_ms < t0 || info.min_time_ms > t1) {
      continue;
    }
    if (!LoadExtent(info.slot, &buf)) {
      return false;
    }
    SlotHeader hdr;
    if (!ValidateSlot(buf.data(), extent_bytes_, &hdr)) {
      continue;  // overwritten since Open(): treat like a torn slot
    }
    const char* payload = buf.data() + record::kExtentHeaderBytes;
    uint32_t dict_count = LoadU32(payload);
    uint32_t block_count = LoadU32(payload + 4);
    size_t off = 8;
    local_to_global.clear();
    for (uint32_t d = 0; d < dict_count; ++d) {
      uint32_t id = LoadU32(payload + off);
      uint32_t name_len = LoadU32(payload + off + 4);
      std::string_view name(payload + off + record::kDictFixedBytes, name_len);
      uint32_t global;
      auto it = name_index_.find(name);
      if (it != name_index_.end()) {
        global = it->second;
      } else {
        global = static_cast<uint32_t>(names_.size());
        names_.emplace_back(name);
        name_index_.emplace(names_.back(), global);
      }
      if (id >= local_to_global.size() + 1) {
        local_to_global.resize(id, UINT32_MAX);
      }
      local_to_global[id - 1] = global;
      off += record::kDictFixedBytes + name_len;
    }
    const char* rec_area = payload + off + block_count * record::kBlockIndexBytes;
    for (uint32_t b = 0; b < block_count; ++b) {
      const char* idx = payload + off + b * record::kBlockIndexBytes;
      uint32_t id = LoadU32(idx);
      uint32_t count = LoadU32(idx + 4);
      uint32_t rec_off = LoadU32(idx + 8);
      int64_t lo = hdr.base_time_ms + LoadI32(idx + 12);
      int64_t hi = hdr.base_time_ms + LoadI32(idx + 16);
      if (hi < t0 || lo > t1 || id == 0 || id > local_to_global.size() ||
          local_to_global[id - 1] == UINT32_MAX) {
        continue;
      }
      uint32_t global = local_to_global[id - 1];
      for (uint32_t r = 0; r < count; ++r) {
        const char* rec = rec_area + rec_off + r * record::kRecordBytes;
        int64_t t = hdr.base_time_ms + LoadI32(rec + 4);
        if (t < t0 || t > t1) {
          continue;
        }
        ReplayRecord rr;
        rr.time_ms = t;
        rr.value = LoadF64(rec + 8);
        rr.name = global;
        out->push_back(rr);
      }
    }
  }
  std::stable_sort(out->begin() + static_cast<ptrdiff_t>(base), out->end(),
                   [](const ReplayRecord& a, const ReplayRecord& b) {
                     return a.time_ms < b.time_ms;
                   });
  return true;
}

}  // namespace gscope
