// Time-travel replay: streams a recorded window back through the normal
// ingest path at Nx speed.
//
// The emit callback receives (name, time_ms, value) in recorded time order —
// point it at IngestRouter::Append (or Scope::PushBuffered) and every
// downstream consumer (triggers, aggregates, FFT, derived stages) runs
// identically on recorded data, because nothing after the emit can tell a
// replayed sample from a live one (the test_scope_playback seam).
//
// Pacing rides the driving loop's Clock: under a SimClock a replay is fully
// deterministic, and RunForMs fast-forwards it; under the real clock
// speed = 2.0 plays a second of recording in half a second.  speed <= 0
// emits the whole window synchronously (burst mode).
#ifndef GSCOPE_RECORD_REPLAYER_H_
#define GSCOPE_RECORD_REPLAYER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "record/extent_log.h"
#include "runtime/event_loop.h"

namespace gscope {

class Replayer {
 public:
  using EmitFn = std::function<void(std::string_view name, int64_t time_ms, double value)>;
  using DoneFn = std::function<void(int64_t emitted)>;

  // Pacing timer granularity (paced mode).
  static constexpr int64_t kTickMs = 5;

  // Opens `path` read-only and scans its extents (no mutation; torn slots
  // are skipped).  May be called while a Recorder still appends to the file.
  bool Load(const std::string& path);
  const ExtentReader& reader() const { return reader_; }

  // Collects [t0, t1] and starts emitting.  speed <= 0: everything is
  // emitted (and `done` runs) before Start returns.  speed > 0: recorded
  // time advances at `speed` x the loop clock from the moment of the call;
  // `done` fires on the loop after the last record.  False when a replay is
  // already active or the window read fails.  `loop` must outlive the
  // replay; Cancel() before destroying either.
  bool Start(MainLoop* loop, int64_t t0, int64_t t1, double speed,
             EmitFn emit, DoneFn done = {});

  // Stops a paced replay without emitting the remainder (no done callback).
  void Cancel();

  bool active() const { return timer_ != 0; }
  // Records emitted by the current/last replay.
  int64_t emitted() const { return emitted_; }

 private:
  bool OnTick();
  void EmitUpTo(int64_t virtual_time_ms);

  ExtentReader reader_;
  std::vector<ReplayRecord> window_;
  size_t next_ = 0;
  int64_t emitted_ = 0;
  int64_t t0_ = 0;
  int64_t t1_ = 0;
  double speed_ = 0.0;
  Nanos start_ns_ = 0;
  MainLoop* loop_ = nullptr;
  SourceId timer_ = 0;
  EmitFn emit_;
  DoneFn done_;
};

}  // namespace gscope

#endif  // GSCOPE_RECORD_REPLAYER_H_
