#include "record/replayer.h"

#include <utility>

namespace gscope {

bool Replayer::Load(const std::string& path) {
  return reader_.Open(path);
}

bool Replayer::Start(MainLoop* loop, int64_t t0, int64_t t1, double speed,
                     EmitFn emit, DoneFn done) {
  if (active() || loop == nullptr || !emit) {
    return false;
  }
  window_.clear();
  if (!reader_.ReadWindow(t0, t1, &window_)) {
    return false;
  }
  next_ = 0;
  emitted_ = 0;
  t0_ = t0;
  t1_ = t1;
  speed_ = speed;
  emit_ = std::move(emit);
  done_ = std::move(done);
  loop_ = loop;

  if (speed_ <= 0.0) {
    EmitUpTo(t1_);
    if (done_) {
      done_(emitted_);
    }
    emit_ = nullptr;
    done_ = nullptr;
    return true;
  }
  start_ns_ = loop_->clock()->NowNs();
  timer_ = loop_->AddTimeoutMs(kTickMs, [this]() { return OnTick(); });
  return true;
}

void Replayer::EmitUpTo(int64_t virtual_time_ms) {
  const std::vector<std::string>& names = reader_.names();
  while (next_ < window_.size() && window_[next_].time_ms <= virtual_time_ms) {
    const ReplayRecord& r = window_[next_];
    emit_(names[r.name], r.time_ms, r.value);
    emitted_ += 1;
    next_ += 1;
  }
}

bool Replayer::OnTick() {
  const Nanos elapsed = loop_->clock()->NowNs() - start_ns_;
  const int64_t advanced_ms =
      static_cast<int64_t>(static_cast<double>(elapsed) / 1e6 * speed_);
  EmitUpTo(t0_ + advanced_ms);
  if (next_ >= window_.size()) {
    timer_ = 0;
    DoneFn done = std::move(done_);
    done_ = nullptr;
    emit_ = nullptr;
    if (done) {
      done(emitted_);
    }
    return false;  // remove the source
  }
  return true;
}

void Replayer::Cancel() {
  if (timer_ != 0) {
    loop_->Remove(timer_);
    timer_ = 0;
    emit_ = nullptr;
    done_ = nullptr;
  }
}

}  // namespace gscope
