// Flight-recorder capture sink: a Scope consumer that appends every routed
// sample to an ExtentLog, on its own event loop.
//
// The Recorder owns a dedicated Scope.  The caller registers that scope with
// the IngestRouter (AddScope) like any other display target: the router
// hands it O(1) spans, and the scope's every-sample buffered tap (PR 5's
// consumer registry) feeds the log at drain time.  Because needs_history is
// tracked per (scope, slot), the recorder's every-sample tap does NOT
// disable drain coalescing for the serving scopes — capture-while-serving
// leaves BENCH_drain untouched (the acceptance bar of ROADMAP item 3).
//
// Threading: by default Start() spawns a thread running the recorder's own
// MainLoop, so extent assembly, pwrite and fsync all happen off the serving
// loops (the router's fan-out workers only enqueue spans, which is
// thread-safe).  Tests pass RecorderOptions::loop to drive the scope
// deterministically on an existing loop instead (no thread).
//
// Stats: the log's plain tallies are mirrored into relaxed atomics once per
// poll tick (the CoalesceMirror pattern), so a STATS fold on another loop
// reads them lock-free at most one tick stale.
#ifndef GSCOPE_RECORD_RECORDER_H_
#define GSCOPE_RECORD_RECORDER_H_

#include <memory>
#include <string>
#include <thread>

#include "core/scope.h"
#include "record/extent_log.h"
#include "runtime/event_loop.h"
#include "runtime/relaxed_counter.h"

namespace gscope {

struct RecorderOptions {
  ExtentLogOptions log;
  // Drain granularity of the capture scope.
  int64_t poll_period_ms = 10;
  // Drive the capture scope on this loop instead of a dedicated thread
  // (deterministic embeddings/tests).  Not owned; must outlive the recorder.
  MainLoop* loop = nullptr;
  std::string name = "recorder";
  // Buffer capacity of the capture scope (samples in flight per shard).
  size_t buffer_capacity = 1 << 16;
};

class Recorder {
 public:
  // Cross-thread mirror of ExtentLog::Stats (+ capture tally), published
  // once per tick.
  struct Stats {
    RelaxedCounter samples_captured;
    RelaxedCounter extents_sealed;
    RelaxedCounter extents_recovered;
    RelaxedCounter extents_truncated;
    RelaxedCounter extents_dropped;
    RelaxedCounter capture_bytes;
    RelaxedCounter seal_failures;
    RelaxedCounter fsync_failures;
    RelaxedCounter degraded_entered;
    RelaxedCounter samples_coalesced;
    RelaxedCounter degraded;  // gauge: 1 while in coalesced capture
  };

  explicit Recorder(RecorderOptions options = {});
  ~Recorder();

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // Opens (recovering) the log at `path`, then starts the capture scope —
  // on a fresh thread+loop, or on options.loop when set.  False if the log
  // cannot be opened or the recorder already runs.
  bool Start(const std::string& path);

  // Seals the staged extent and stops.  The caller MUST have unregistered
  // scope() from its router first — Stop does not know the router.  Safe to
  // call twice; also called by the destructor.
  void Stop();

  bool running() const { return running_; }

  // The capture scope, for IngestRouter::AddScope.  Already in concurrent
  // mode; valid between Start and Stop.  Null when not running.
  Scope* scope() const { return scope_.get(); }

  const std::string& path() const { return path_; }
  FsyncPolicy fsync_policy() const { return options_.log.fsync_policy; }
  const Stats& stats() const { return stats_; }

  // Seals the staged extent from the recorder loop (tests: make a window
  // durable without stopping).  Blocks until done on own-thread recorders.
  void FlushNow();

 private:
  void InstallOnLoop();    // loop thread: start polling + the publish timer
  void TeardownOnLoop();   // loop thread: stop polling, final drain + seal
  void PublishTick();      // loop thread: stats mirror + interval fsync

  RecorderOptions options_;
  std::string path_;
  bool running_ = false;

  std::unique_ptr<MainLoop> own_loop_;
  MainLoop* loop_ = nullptr;  // own_loop_.get() or options_.loop
  std::thread thread_;
  std::unique_ptr<Scope> scope_;
  ExtentLog log_;
  SourceId publish_timer_ = 0;

  // Loop-thread-only tallies, mirrored into stats_ by PublishTick.
  int64_t captured_ = 0;

  Stats stats_;
};

}  // namespace gscope

#endif  // GSCOPE_RECORD_RECORDER_H_
