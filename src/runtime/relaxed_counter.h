// Relaxed atomic counter with plain-integer ergonomics.
//
// The sharded server (runtime/loop_pool.h) mutates its Stats from N loop
// threads and reads them from any of them (the STATS verb answers on the
// session's loop; tests read from the primary thread).  Each counter is an
// independent monotone tally - no cross-counter invariant is read under a
// single lock - so relaxed per-field atomics are exactly the right contract:
// TSan-clean, no ordering paid, and `stats.tuples += 1` / `stats.tuples == 5`
// keep compiling unchanged.  With loops = 1 the only cost versus a plain
// int64 is an uncontended lock-free add on the owning core.
#ifndef GSCOPE_RUNTIME_RELAXED_COUNTER_H_
#define GSCOPE_RUNTIME_RELAXED_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace gscope {

class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(int64_t v) : v_(v) {}  // NOLINT: implicit by design

  // Counters are snapshots, not identities: copying reads the source's
  // current value (Stats structs are returned by value in a few tests).
  RelaxedCounter(const RelaxedCounter& other) : v_(other.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) {
    v_.store(other.load(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  void operator+=(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void operator-=(int64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }
  RelaxedCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }

  int64_t load() const { return v_.load(std::memory_order_relaxed); }
  operator int64_t() const { return load(); }  // NOLINT: implicit by design

 private:
  std::atomic<int64_t> v_{0};
};

}  // namespace gscope

#endif  // GSCOPE_RUNTIME_RELAXED_COUNTER_H_
