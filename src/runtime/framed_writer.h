// Bounded, frame-preserving write buffer over a MainLoop writability watch.
//
// The server->client egress of the control channel and the StreamClient's
// tuple upload share the same machinery (docs/protocol.md, "Backlog and drop
// semantics"): output is buffered and drained through a non-blocking fd
// watch, the unsent backlog is capped, and overload never tears a frame.
// Bytes already committed are never truncated mid-frame, so the peer can
// never observe a torn line - every overload decision discards complete
// frames only, whichever policy picks the victim.
//
// What happens when a committed frame would push the backlog past the cap is
// an OverflowPolicy:
//
//   kDropNewest (default)  the frame being appended is rolled back WHOLE and
//                          counted (frames_dropped).  The paper's stance:
//                          visualization data is disposable, the app is not.
//   kDropOldest            whole frames are evicted from the backlog HEAD
//                          (oldest first, via a frame-boundary index) until
//                          the new frame fits; a frame the kernel already
//                          consumed part of is never evicted.  Keeps the
//                          newest data on a stalled viewer (frames_evicted).
//   kBlockWithDeadline     the commit waits - poll(2) on the fd, draining as
//                          writability arrives - up to block_deadline_ns,
//                          then falls back to kDropNewest.  Bounds producer
//                          latency instead of sacrificing data first
//                          (block_time_ns accumulates the waits).
//
// Usage per frame:
//   std::string& buf = writer.BeginFrame();
//   AppendTuple(buf, ...);          // append the frame's bytes, no escaping
//   if (!writer.CommitFrame()) ...  // false = dropped (rolled back whole)
//
// The buffer may be filled before a connection exists (Attach later flushes
// it: pre-connect sends queue) and survives Detach(fd-only) via Reset().
// Single-threaded: all calls on the loop thread.  kBlockWithDeadline blocks
// that thread for up to the deadline per overflowing commit.
#ifndef GSCOPE_RUNTIME_FRAMED_WRITER_H_
#define GSCOPE_RUNTIME_FRAMED_WRITER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "runtime/clock.h"
#include "runtime/event_loop.h"

namespace gscope {

// How a committed frame that would overflow the backlog cap is handled.
enum class OverflowPolicy : uint8_t {
  kDropNewest = 0,
  kDropOldest = 1,
  kBlockWithDeadline = 2,
};

class FramedWriter {
 public:
  struct Stats {
    int64_t frames_committed = 0;
    int64_t frames_dropped = 0;    // newest rolled back whole at the cap
    int64_t frames_evicted = 0;    // oldest evicted whole (kDropOldest)
    int64_t frames_abandoned = 0;  // committed-but-unsent frames lost to Reset
    int64_t bytes_written = 0;
    // Bytes of every frame that was dropped, evicted, or abandoned: with
    // bytes_written and pending_bytes() this balances byte-for-byte against
    // everything ever committed (plus rolled-back newest frames).
    int64_t bytes_dropped = 0;
    // Weighted mirrors of the frame counters.  A frame commits with a
    // weight (CommitFrame's argument, default 1): the number of payload
    // units - tuples - it carries.  Binary wire frames batch many tuples
    // per frame, and these counters are what keep tuple-exact accounting
    // (delivered == sent - evicted - abandoned) alive when the eviction
    // unit is a multi-tuple frame.  For weight-1 frames they equal the
    // frame counters.
    int64_t units_committed = 0;
    int64_t units_dropped = 0;
    int64_t units_evicted = 0;
    int64_t units_abandoned = 0;
    int64_t block_time_ns = 0;     // time spent waiting (kBlockWithDeadline)
    size_t high_water_bytes = 0;   // max unsent backlog ever observed
    int64_t policy_switches = 0;   // adaptive degrade + recover transitions
    int64_t deadline_tunes = 0;    // adaptive block-deadline adjustments
  };

  // Graceful-degradation knobs (ROADMAP item 5).  Both mechanisms observe
  // pressure only at commit/drain points - no timers of their own - and read
  // the loop's clock, so a SimClock test can script a stall precisely.
  struct AdaptiveOptions {
    // With base policy kDropNewest: once commits keep overflowing with no
    // relief for stall_window_ns, switch to kDropOldest (freshness beats
    // history on a pinned peer); switch back after the backlog has stayed
    // at or below low_water_frac * max_buffer for the same window.  Each
    // direction counts one policy_switch.
    bool adapt_policy = false;
    Nanos stall_window_ns = MillisToNanos(25);
    double low_water_frac = 0.5;
    // With base policy kBlockWithDeadline: scale each wait to the observed
    // drain rate (time to drain the current overshoot, padded 2x) instead of
    // the fixed deadline, clamped to [min, max].  A fast-draining peer stops
    // charging producers the full worst-case deadline; a slow one is not
    // waited on pointlessly past max.
    bool tune_block_deadline = false;
    Nanos min_block_deadline_ns = MillisToNanos(1);
    Nanos max_block_deadline_ns = MillisToNanos(50);
  };

  // Invoked (once) when a drain hits a hard write error; the writer has
  // already detached from the fd and cleared its backlog.  The owner closes
  // the socket / drops the session.
  using ErrorFn = std::function<void()>;

  // `loop` is not owned.  `max_buffer` caps the unsent byte backlog.
  FramedWriter(MainLoop* loop, size_t max_buffer);
  ~FramedWriter();

  FramedWriter(const FramedWriter&) = delete;
  FramedWriter& operator=(const FramedWriter&) = delete;

  // Selects the overflow policy.  `block_deadline_ns` bounds each
  // kBlockWithDeadline wait; with no fd attached (or a zero deadline) that
  // policy degrades to kDropNewest for the commit in question.  May be
  // changed at any time between frames.  Resets any adaptive degradation in
  // progress (the new policy becomes the base).
  void SetPolicy(OverflowPolicy policy, Nanos block_deadline_ns = 0);
  // The policy currently in effect - differs from configured_policy() while
  // adaptively degraded.
  OverflowPolicy policy() const { return policy_; }
  OverflowPolicy configured_policy() const { return base_policy_; }

  void SetAdaptive(const AdaptiveOptions& options);
  const AdaptiveOptions& adaptive() const { return adaptive_; }
  // Last block deadline actually used (== the configured one until tuning
  // adjusts it).
  Nanos effective_block_deadline_ns() const { return tuned_deadline_ns_; }
  // EWMA of the observed drain rate, bytes/sec; 0 until measured.
  double drain_rate_bps() const { return drain_rate_bps_; }

  // Re-caps the unsent backlog.  Consulted only at commit time, so shrinking
  // below the current backlog simply makes the next commits overflow.
  void SetMaxBuffer(size_t max_buffer) { max_buffer_ = max_buffer == 0 ? 1 : max_buffer; }
  size_t max_buffer() const { return max_buffer_; }

  // Starts draining into `fd` (non-blocking; not owned).  Any bytes already
  // committed while detached are scheduled immediately.
  void Attach(int fd);
  // Stops watching the fd.  Buffered-but-unsent bytes are kept (a later
  // Attach resumes them); use Reset() to also discard them.
  void Detach();
  bool attached() const { return fd_ >= 0; }

  void SetErrorCallback(ErrorFn fn) { on_error_ = std::move(fn); }

  // Opens a frame and returns the buffer to append its bytes to.  Only the
  // tail past the returned buffer's current size belongs to the new frame.
  std::string& BeginFrame();
  // Seals the open frame.  If the unsent backlog (including this frame)
  // would exceed max_buffer, the overflow policy runs; when it cannot make
  // room the frame is removed again - whole - and false is returned.  On
  // success schedules the writability watch.  `weight` is the number of
  // payload units (tuples) the frame carries, echoed into the units_*
  // stats when the frame is committed / dropped / evicted / abandoned.
  bool CommitFrame(uint32_t weight = 1);
  // Discards the open frame (error paths).
  void RollbackFrame();

  // Unsent bytes currently queued.
  size_t pending_bytes() const { return buffer_.size() - offset_; }
  const Stats& stats() const { return stats_; }

  // Drops backlog and detaches.  Returns the total WEIGHT of the
  // committed-but-unsent frames discarded (== their count for weight-1
  // frames), counted into frames_abandoned / units_abandoned (partial head
  // bytes of a frame the kernel already consumed count toward the frame
  // they belong to; an open uncommitted frame is not counted).
  size_t Reset();

 private:
  enum class DrainStatus { kDrained, kBlocked, kError };

  bool OnWritable();
  void EnsureWatch();
  // Sends committed bytes in [offset_, limit).  Returns kError on a hard
  // write error WITHOUT cleaning up (callers reset + surface it).
  DrainStatus Drain(size_t limit);
  // End of the committed region (the open frame's bytes are excluded).
  size_t committed_end() const { return frame_open_ ? frame_start_ : buffer_.size(); }
  // Drops frame-index entries for frames the kernel fully consumed.
  void PruneSentFrames();
  // Erases the consumed [0, offset_) prefix once it dominates the buffer.
  void CompactConsumedPrefix();
  // kDropOldest: evicts wholly-unsent frames, oldest first, until the
  // backlog (including the still-open frame) fits under the cap or nothing
  // evictable remains.
  void EvictOldestUntilFits();
  // kBlockWithDeadline: polls the fd and drains until the backlog fits or
  // the deadline passes.  Returns false if a hard error reset the writer.
  bool BlockUntilFits();
  // Adaptive policy: called on every overflowing commit / every
  // below-the-cap observation; performs the degrade / recover transitions.
  void NoteOverflowPressure();
  void NoteBacklogLevel();
  // Folds bytes drained since the last mark into the drain-rate EWMA.
  void UpdateDrainRate();
  // The deadline BlockUntilFits should budget for this commit.
  Nanos EffectiveBlockDeadline();

  MainLoop* loop_;
  size_t max_buffer_;
  OverflowPolicy policy_ = OverflowPolicy::kDropNewest;
  OverflowPolicy base_policy_ = OverflowPolicy::kDropNewest;
  Nanos block_deadline_ns_ = 0;
  AdaptiveOptions adaptive_;
  bool degraded_ = false;     // policy_ switched away from base_policy_
  Nanos stall_since_ = -1;    // first overflowing commit of the current stall
  Nanos calm_since_ = -1;     // backlog first seen below low water
  Nanos tuned_deadline_ns_ = 0;
  Nanos rate_mark_ns_ = -1;
  int64_t bytes_since_mark_ = 0;
  double drain_rate_bps_ = 0;
  int fd_ = -1;
  SourceId watch_ = 0;
  std::string buffer_;
  size_t offset_ = 0;       // bytes already handed to the kernel
  size_t frame_start_ = 0;  // BeginFrame position; npos-like 0 when closed
  bool frame_open_ = false;
  // Committed frames not yet fully sent, oldest first: start offset into
  // buffer_ plus the commit weight (tuple count).  Frame i ends where frame
  // i+1 starts; the last committed frame ends at committed_end().  This is
  // what lets kDropOldest evict on exact frame boundaries and Reset() count
  // whole frames with tuple-exact weights.
  struct FrameRec {
    size_t start;
    uint32_t weight;
  };
  std::deque<FrameRec> frame_starts_;
  // The head frame has bytes the kernel already consumed.  Tracked as state
  // (not derived from offsets): the EAGAIN compaction erases the consumed
  // prefix, after which the head frame's remainder starts at offset 0 and
  // would be indistinguishable from a wholly-unsent - evictable - frame.
  bool head_partial_ = false;
  ErrorFn on_error_;
  Stats stats_;
};

}  // namespace gscope

#endif  // GSCOPE_RUNTIME_FRAMED_WRITER_H_
