// Bounded, frame-preserving write buffer over a MainLoop writability watch.
//
// The server->client egress of the control channel and the StreamClient's
// tuple upload share the same policy (docs/protocol.md, "Backlog and drop
// semantics"): output is buffered and drained through a non-blocking fd
// watch, the unsent backlog is capped, and when the cap would be exceeded
// the frame being appended is rolled back WHOLE.  Bytes already committed
// are never truncated, so the peer can never observe a torn line - a drop
// decision taken while the kernel has consumed half a line (write offset
// mid-frame) only ever discards complete not-yet-committed frames.
//
// Usage per frame:
//   std::string& buf = writer.BeginFrame();
//   AppendTuple(buf, ...);          // append the frame's bytes, no escaping
//   if (!writer.CommitFrame()) ...  // false = over cap, frame rolled back
//
// The buffer may be filled before a connection exists (Attach later flushes
// it: pre-connect sends queue) and survives Detach(fd-only) via Reset().
// Single-threaded: all calls on the loop thread.
#ifndef GSCOPE_RUNTIME_FRAMED_WRITER_H_
#define GSCOPE_RUNTIME_FRAMED_WRITER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "runtime/event_loop.h"

namespace gscope {

class FramedWriter {
 public:
  struct Stats {
    int64_t frames_committed = 0;
    int64_t frames_dropped = 0;  // backlog cap: whole frames, never bytes
    int64_t bytes_written = 0;
  };

  // Invoked (once) when a drain hits a hard write error; the writer has
  // already detached from the fd and cleared its backlog.  The owner closes
  // the socket / drops the session.
  using ErrorFn = std::function<void()>;

  // `loop` is not owned.  `max_buffer` caps the unsent byte backlog.
  FramedWriter(MainLoop* loop, size_t max_buffer);
  ~FramedWriter();

  FramedWriter(const FramedWriter&) = delete;
  FramedWriter& operator=(const FramedWriter&) = delete;

  // Starts draining into `fd` (non-blocking; not owned).  Any bytes already
  // committed while detached are scheduled immediately.
  void Attach(int fd);
  // Stops watching the fd.  Buffered-but-unsent bytes are kept (a later
  // Attach resumes them); use Reset() to also discard them.
  void Detach();
  bool attached() const { return fd_ >= 0; }

  void SetErrorCallback(ErrorFn fn) { on_error_ = std::move(fn); }

  // Opens a frame and returns the buffer to append its bytes to.  Only the
  // tail past the returned buffer's current size belongs to the new frame.
  std::string& BeginFrame();
  // Seals the open frame.  If the unsent backlog (including this frame)
  // would exceed max_buffer, the frame is removed again - whole - and false
  // is returned.  On success schedules the writability watch.
  bool CommitFrame();
  // Discards the open frame (error paths).
  void RollbackFrame();

  // Unsent bytes currently queued.
  size_t pending_bytes() const { return buffer_.size() - offset_; }
  const Stats& stats() const { return stats_; }

  // Drops backlog and detaches.  Returns the number of committed-but-unsent
  // whole frames discarded (partial head bytes of a frame the kernel already
  // consumed count toward the frame they belong to).
  void Reset();

 private:
  bool OnWritable();
  void EnsureWatch();

  MainLoop* loop_;
  size_t max_buffer_;
  int fd_ = -1;
  SourceId watch_ = 0;
  std::string buffer_;
  size_t offset_ = 0;       // bytes already handed to the kernel
  size_t frame_start_ = 0;  // BeginFrame position; npos-like 0 when closed
  bool frame_open_ = false;
  ErrorFn on_error_;
  Stats stats_;
};

}  // namespace gscope

#endif  // GSCOPE_RUNTIME_FRAMED_WRITER_H_
