#include "runtime/loop_pool.h"

namespace gscope {

LoopPool::LoopPool(MainLoop* primary, size_t loops)
    : primary_(primary), size_(loops == 0 ? 1 : loops) {
  workers_.reserve(size_ - 1);
  for (size_t i = 1; i < size_; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->loop = std::make_unique<MainLoop>(primary_->clock());
    workers_.push_back(std::move(worker));
  }
}

LoopPool::~LoopPool() { Stop(); }

void LoopPool::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  for (auto& worker : workers_) {
    MainLoop* loop = worker->loop.get();
    worker->thread = std::thread([loop]() { loop->Run(); });
  }
}

void LoopPool::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  for (auto& worker : workers_) {
    worker->loop->Quit();
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
  }
}

void LoopPool::InvokeSync(size_t i, std::function<void()> fn) {
  if (i == 0 || !running_) {
    fn();
    return;
  }
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  loop(i)->Invoke([&]() {
    fn();
    // Notify while holding the lock: the waiter cannot leave wait() (and
    // destroy cv, which lives on its stack) until it reacquires mu, which
    // happens strictly after this thread has left notify_one and unlocked.
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&]() { return done; });
}

TimerStatsAggregate LoopPool::GatherTimerStats() {
  TimerStatsAggregate agg;
  for (size_t i = 0; i < size_; ++i) {
    TimerStats s;
    InvokeSync(i, [&]() { s = loop(i)->TotalTimerStats(); });
    agg.Fold(s);
  }
  return agg;
}

}  // namespace gscope
