#include "runtime/framed_writer.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

namespace gscope {

FramedWriter::FramedWriter(MainLoop* loop, size_t max_buffer)
    : loop_(loop), max_buffer_(max_buffer == 0 ? 1 : max_buffer) {}

FramedWriter::~FramedWriter() { Detach(); }

void FramedWriter::Attach(int fd) {
  if (fd_ == fd) {
    return;
  }
  Detach();
  fd_ = fd;
  if (pending_bytes() > 0) {
    EnsureWatch();
  }
}

void FramedWriter::Detach() {
  if (watch_ != 0) {
    loop_->Remove(watch_);
    watch_ = 0;
  }
  fd_ = -1;
}

void FramedWriter::Reset() {
  Detach();
  buffer_.clear();
  offset_ = 0;
  frame_open_ = false;
  frame_start_ = 0;
}

std::string& FramedWriter::BeginFrame() {
  frame_start_ = buffer_.size();
  frame_open_ = true;
  return buffer_;
}

bool FramedWriter::CommitFrame() {
  if (!frame_open_) {
    return false;
  }
  frame_open_ = false;
  if (buffer_.size() - offset_ > max_buffer_) {
    // Whole-frame rollback: everything before frame_start_ was committed by
    // earlier calls and stays byte-for-byte intact, so a drop can never
    // leave a truncated frame on the wire.
    buffer_.resize(frame_start_);
    stats_.frames_dropped += 1;
    return false;
  }
  stats_.frames_committed += 1;
  if (fd_ >= 0) {
    EnsureWatch();
  }
  return true;
}

void FramedWriter::RollbackFrame() {
  if (frame_open_) {
    buffer_.resize(frame_start_);
    frame_open_ = false;
  }
}

void FramedWriter::EnsureWatch() {
  if (watch_ != 0 || fd_ < 0) {
    return;
  }
  watch_ = loop_->AddIoWatch(fd_, IoCondition::kOut,
                             [this](int, IoCondition) { return OnWritable(); });
}

bool FramedWriter::OnWritable() {
  while (offset_ < buffer_.size()) {
    // MSG_NOSIGNAL: writing to a peer that already reset the connection must
    // surface as EPIPE (the error path below drops the session), not raise
    // SIGPIPE and kill the whole process.  Non-socket fds (pipes in tests)
    // fall back to plain write.
    ssize_t n = ::send(fd_, buffer_.data() + offset_, buffer_.size() - offset_, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd_, buffer_.data() + offset_, buffer_.size() - offset_);
    }
    if (n >= 0) {
      offset_ += static_cast<size_t>(n);
      stats_.bytes_written += n;
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Compact the consumed prefix when it dominates the buffer, so a
      // connection that drains steadily but never fully (offset_ chasing a
      // backlog pinned near the cap) cannot grow the string without bound.
      // Amortized O(1): each erase moves at most as many bytes as were
      // just written.  No frame is ever open here (BeginFrame/CommitFrame
      // pairs never span a loop iteration), but frame_start_ is kept
      // coherent regardless.
      if (offset_ >= 4096 && offset_ * 2 >= buffer_.size()) {
        buffer_.erase(0, offset_);
        if (frame_open_ && frame_start_ >= offset_) {
          frame_start_ -= offset_;
        }
        offset_ = 0;
      }
      return true;  // keep the watch; try again when writable
    }
    if (errno == EINTR) {
      continue;
    }
    // Hard error: the connection is gone.  Clean up before surfacing so the
    // callback may destroy this writer's owner.
    watch_ = 0;
    Reset();
    if (on_error_) {
      on_error_();
    }
    return false;
  }
  // Fully drained: compact and drop the watch until more data is committed.
  buffer_.clear();
  offset_ = 0;
  watch_ = 0;
  return false;
}

}  // namespace gscope
