#include "runtime/framed_writer.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

// The drain path is a write syscall site like Socket::Write, so it honours
// the same deterministic fault shim - partial writes and connection kills
// injected here are what prove the frame-boundary invariants under overload.
#include "net/fault_injector.h"

namespace gscope {

FramedWriter::FramedWriter(MainLoop* loop, size_t max_buffer)
    : loop_(loop), max_buffer_(max_buffer == 0 ? 1 : max_buffer) {}

FramedWriter::~FramedWriter() { Detach(); }

void FramedWriter::SetPolicy(OverflowPolicy policy, Nanos block_deadline_ns) {
  policy_ = policy;
  base_policy_ = policy;
  block_deadline_ns_ = block_deadline_ns < 0 ? 0 : block_deadline_ns;
  tuned_deadline_ns_ = block_deadline_ns_;
  degraded_ = false;
  stall_since_ = -1;
  calm_since_ = -1;
}

void FramedWriter::SetAdaptive(const AdaptiveOptions& options) {
  adaptive_ = options;
  if (adaptive_.stall_window_ns < 0) {
    adaptive_.stall_window_ns = 0;
  }
  adaptive_.low_water_frac = std::min(1.0, std::max(0.0, adaptive_.low_water_frac));
  if (!adaptive_.adapt_policy && degraded_) {
    policy_ = base_policy_;
    degraded_ = false;
  }
  stall_since_ = -1;
  calm_since_ = -1;
}

void FramedWriter::NoteOverflowPressure() {
  if (!adaptive_.adapt_policy || base_policy_ != OverflowPolicy::kDropNewest) {
    return;
  }
  calm_since_ = -1;
  if (degraded_) {
    return;
  }
  Nanos now = loop_->clock()->NowNs();
  if (stall_since_ < 0) {
    stall_since_ = now;
    return;
  }
  if (now - stall_since_ >= adaptive_.stall_window_ns) {
    // The backlog has been pinned at the cap across a sustained window of
    // overflowing commits: drop-newest is now starving the peer of exactly
    // the freshest data it needs.  Degrade to drop-oldest.
    policy_ = OverflowPolicy::kDropOldest;
    degraded_ = true;
    stats_.policy_switches += 1;
    stall_since_ = -1;
  }
}

void FramedWriter::NoteBacklogLevel() {
  if (!adaptive_.adapt_policy) {
    return;
  }
  size_t low_water =
      static_cast<size_t>(adaptive_.low_water_frac * static_cast<double>(max_buffer_));
  if (pending_bytes() > low_water) {
    calm_since_ = -1;
    return;
  }
  stall_since_ = -1;
  if (!degraded_) {
    return;
  }
  Nanos now = loop_->clock()->NowNs();
  if (calm_since_ < 0) {
    calm_since_ = now;
    return;
  }
  if (now - calm_since_ >= adaptive_.stall_window_ns) {
    policy_ = base_policy_;
    degraded_ = false;
    stats_.policy_switches += 1;
    calm_since_ = -1;
  }
}

void FramedWriter::UpdateDrainRate() {
  Nanos now = loop_->clock()->NowNs();
  if (rate_mark_ns_ < 0) {
    rate_mark_ns_ = now;
    bytes_since_mark_ = 0;
    return;
  }
  Nanos elapsed = now - rate_mark_ns_;
  if (elapsed < kNanosPerMilli) {
    return;  // window too small for a meaningful sample
  }
  double instant = static_cast<double>(bytes_since_mark_) *
                   static_cast<double>(kNanosPerSecond) / static_cast<double>(elapsed);
  drain_rate_bps_ = drain_rate_bps_ <= 0 ? instant : 0.7 * drain_rate_bps_ + 0.3 * instant;
  rate_mark_ns_ = now;
  bytes_since_mark_ = 0;
}

Nanos FramedWriter::EffectiveBlockDeadline() {
  if (!adaptive_.tune_block_deadline || drain_rate_bps_ <= 0) {
    return block_deadline_ns_;
  }
  // Budget the time to drain the current overshoot at the observed rate,
  // padded 2x for scheduling noise, clamped to the configured band.
  size_t overshoot = pending_bytes() > max_buffer_ ? pending_bytes() - max_buffer_ : 1;
  double estimate = static_cast<double>(overshoot) * 2.0 *
                    static_cast<double>(kNanosPerSecond) / drain_rate_bps_;
  Nanos tuned = static_cast<Nanos>(estimate);
  tuned = std::max(adaptive_.min_block_deadline_ns,
                   std::min(adaptive_.max_block_deadline_ns, tuned));
  if (tuned != tuned_deadline_ns_) {
    tuned_deadline_ns_ = tuned;
    stats_.deadline_tunes += 1;
  }
  return tuned;
}

void FramedWriter::Attach(int fd) {
  if (fd_ == fd) {
    return;
  }
  Detach();
  fd_ = fd;
  if (pending_bytes() > 0) {
    EnsureWatch();
  }
}

void FramedWriter::Detach() {
  if (watch_ != 0) {
    loop_->Remove(watch_);
    watch_ = 0;
  }
  fd_ = -1;
}

size_t FramedWriter::Reset() {
  Detach();
  PruneSentFrames();
  // Committed-but-unsent bytes are lost with their frames; the open frame's
  // uncommitted tail is the caller's rollback, not a loss to account here.
  size_t abandoned_units = 0;
  for (const FrameRec& frame : frame_starts_) {
    abandoned_units += frame.weight;
  }
  size_t end = committed_end();
  if (end > offset_) {
    stats_.bytes_dropped += static_cast<int64_t>(end - offset_);
  }
  stats_.frames_abandoned += static_cast<int64_t>(frame_starts_.size());
  stats_.units_abandoned += static_cast<int64_t>(abandoned_units);
  buffer_.clear();
  offset_ = 0;
  frame_open_ = false;
  frame_start_ = 0;
  frame_starts_.clear();
  head_partial_ = false;
  return abandoned_units;
}

std::string& FramedWriter::BeginFrame() {
  frame_start_ = buffer_.size();
  frame_open_ = true;
  return buffer_;
}

bool FramedWriter::CommitFrame(uint32_t weight) {
  if (!frame_open_) {
    return false;
  }
  size_t frame_len = buffer_.size() - frame_start_;
  if (pending_bytes() > max_buffer_) {
    NoteOverflowPressure();  // may switch policy_ for this very commit
    if (policy_ == OverflowPolicy::kDropOldest) {
      // A frame that exceeds the cap on its own can never fit: evicting the
      // backlog for it would wipe the queue AND drop it - skip straight to
      // the drop-newest fallback.
      if (frame_len <= max_buffer_) {
        EvictOldestUntilFits();
      }
    } else if (policy_ == OverflowPolicy::kBlockWithDeadline) {
      if (!BlockUntilFits()) {
        // Hard write error during the blocking drain.  Settle every piece
        // of writer state BEFORE surfacing the error: the callback is
        // allowed to destroy this writer's owner.  The open frame resolves
        // as dropped (counted here, while Reset - which accounts only the
        // committed region - still sees it as open and excludes its bytes).
        stats_.frames_dropped += 1;
        stats_.units_dropped += weight;
        stats_.bytes_dropped += static_cast<int64_t>(frame_len);
        Reset();
        if (on_error_) {
          on_error_();
        }
        return false;
      }
    }
    if (pending_bytes() > max_buffer_) {
      // Whole-frame rollback: everything before frame_start_ was committed
      // by earlier calls and stays byte-for-byte intact, so a drop can never
      // leave a truncated frame on the wire.
      buffer_.resize(frame_start_);
      frame_open_ = false;
      stats_.frames_dropped += 1;
      stats_.units_dropped += weight;
      stats_.bytes_dropped += static_cast<int64_t>(frame_len);
      return false;
    }
  } else {
    NoteBacklogLevel();
  }
  frame_starts_.push_back(FrameRec{frame_start_, weight});
  frame_open_ = false;
  stats_.frames_committed += 1;
  stats_.units_committed += weight;
  stats_.high_water_bytes = std::max(stats_.high_water_bytes, pending_bytes());
  if (fd_ >= 0) {
    EnsureWatch();
  }
  return true;
}

void FramedWriter::RollbackFrame() {
  if (frame_open_) {
    buffer_.resize(frame_start_);
    frame_open_ = false;
  }
}

void FramedWriter::PruneSentFrames() {
  while (!frame_starts_.empty()) {
    size_t end = frame_starts_.size() > 1 ? frame_starts_[1].start : committed_end();
    if (end <= offset_) {
      frame_starts_.pop_front();
      head_partial_ = false;  // the partially-sent frame completed
    } else {
      break;
    }
  }
  if (frame_starts_.empty()) {
    head_partial_ = false;
  } else if (frame_starts_.front().start < offset_) {
    // Never cleared here: after the EAGAIN compaction the head's remainder
    // sits at offset 0 and this comparison goes blind, but the frame is
    // still mid-flight until it fully drains (pop above).
    head_partial_ = true;
  }
}

void FramedWriter::EvictOldestUntilFits() {
  // Called from CommitFrame with the new frame still open at the tail: the
  // committed region ends at frame_start_.
  while (pending_bytes() > max_buffer_) {
    PruneSentFrames();
    // The oldest evictable frame is the oldest WHOLLY-unsent one; a frame
    // the kernel already consumed part of must finish (evicting it would
    // tear the stream at the peer).
    size_t idx = head_partial_ ? 1 : 0;
    if (idx >= frame_starts_.size()) {
      return;  // nothing evictable; CommitFrame falls back to drop-newest
    }
    size_t start = frame_starts_[idx].start;
    uint32_t weight = frame_starts_[idx].weight;
    size_t end =
        idx + 1 < frame_starts_.size() ? frame_starts_[idx + 1].start : committed_end();
    size_t len = end - start;
    if (idx == 0 && start == offset_) {
      // The victim sits exactly at the drain point (after a prune the read
      // cursor is always at the head frame's start unless that frame is
      // partial): skip it by advancing the cursor instead of memmoving the
      // whole tail - the steady-state eviction path stays O(1) per frame,
      // with the consumed prefix reclaimed below.
      offset_ = end;
      frame_starts_.pop_front();
    } else {
      buffer_.erase(start, len);
      frame_starts_.erase(frame_starts_.begin() + static_cast<ptrdiff_t>(idx));
      for (size_t i = idx; i < frame_starts_.size(); ++i) {
        frame_starts_[i].start -= len;
      }
      frame_start_ -= len;
    }
    stats_.frames_evicted += 1;
    stats_.units_evicted += weight;
    stats_.bytes_dropped += static_cast<int64_t>(len);
  }
  // A fully-stalled peer never reaches OnWritable's compaction; reclaim the
  // skipped prefix here or the string would grow without bound.
  CompactConsumedPrefix();
}

bool FramedWriter::BlockUntilFits() {
  if (fd_ < 0 || block_deadline_ns_ <= 0) {
    return true;  // nothing to wait on; degrade to drop-newest
  }
  SteadyClock* clock = SteadyClock::Instance();  // waits are real time
  Nanos start = clock->NowNs();
  Nanos deadline = start + EffectiveBlockDeadline();
  while (pending_bytes() > max_buffer_) {
    if (offset_ >= committed_end()) {
      break;  // nothing committed left to drain: the frame alone exceeds the cap
    }
    Nanos now = clock->NowNs();
    if (now >= deadline) {
      break;
    }
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLOUT;
    int timeout_ms =
        static_cast<int>((deadline - now + kNanosPerMilli - 1) / kNanosPerMilli);
    int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if (ready == 0) {
      break;  // deadline elapsed inside poll
    }
    DrainStatus status = Drain(committed_end());
    PruneSentFrames();
    UpdateDrainRate();
    if (status == DrainStatus::kError) {
      // Cleanup (Reset + error callback) belongs to CommitFrame, which
      // must finish its own accounting first.
      stats_.block_time_ns += clock->NowNs() - start;
      return false;
    }
  }
  stats_.block_time_ns += clock->NowNs() - start;
  return true;
}

void FramedWriter::EnsureWatch() {
  if (watch_ != 0 || fd_ < 0) {
    return;
  }
  watch_ = loop_->AddIoWatch(fd_, IoCondition::kOut,
                             [this](int, IoCondition) { return OnWritable(); });
}

FramedWriter::DrainStatus FramedWriter::Drain(size_t limit) {
  while (offset_ < limit) {
    size_t want = limit - offset_;
    ssize_t n;
    if (FaultInjector::Shim(FaultOp::kWrite, fd_, &want)) {
      n = -1;
    } else {
      // MSG_NOSIGNAL: writing to a peer that already reset the connection
      // must surface as EPIPE (the error path drops the session), not raise
      // SIGPIPE and kill the whole process.  Non-socket fds (pipes in tests)
      // fall back to plain write.
      n = ::send(fd_, buffer_.data() + offset_, want, MSG_NOSIGNAL);
      if (n < 0 && errno == ENOTSOCK) {
        n = ::write(fd_, buffer_.data() + offset_, want);
      }
    }
    if (n >= 0) {
      offset_ += static_cast<size_t>(n);
      stats_.bytes_written += n;
      bytes_since_mark_ += n;
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return DrainStatus::kBlocked;
    }
    if (errno == EINTR) {
      continue;
    }
    return DrainStatus::kError;
  }
  return DrainStatus::kDrained;
}

void FramedWriter::CompactConsumedPrefix() {
  // Compact the consumed prefix when it dominates the buffer, so a
  // connection that drains steadily but never fully (offset_ chasing a
  // backlog pinned near the cap, or eviction skipping frames at the drain
  // point) cannot grow the string without bound.  Amortized O(1): each
  // erase moves at most as many bytes as were consumed since the last one.
  // frame_start_ and the frame index are kept coherent whether or not a
  // frame is open.
  if (offset_ >= 4096 && offset_ * 2 >= buffer_.size()) {
    buffer_.erase(0, offset_);
    for (FrameRec& frame : frame_starts_) {
      frame.start = frame.start > offset_ ? frame.start - offset_ : 0;
    }
    frame_start_ = frame_start_ > offset_ ? frame_start_ - offset_ : 0;
    offset_ = 0;
  }
}

bool FramedWriter::OnWritable() {
  DrainStatus status = Drain(buffer_.size());
  PruneSentFrames();
  UpdateDrainRate();
  NoteBacklogLevel();
  if (status == DrainStatus::kBlocked) {
    CompactConsumedPrefix();
    return true;  // keep the watch; try again when writable
  }
  if (status == DrainStatus::kError) {
    // Hard error: the connection is gone.  Clean up before surfacing so the
    // callback may destroy this writer's owner.
    watch_ = 0;
    Reset();
    if (on_error_) {
      on_error_();
    }
    return false;
  }
  // Fully drained: compact and drop the watch until more data is committed.
  buffer_.clear();
  offset_ = 0;
  frame_start_ = 0;
  frame_starts_.clear();
  head_partial_ = false;
  watch_ = 0;
  return false;
}

}  // namespace gscope
