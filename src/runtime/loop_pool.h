// LoopPool: N per-core event loops behind one primary loop.
//
// The 10k-session scale-out (ROADMAP item 2) shards accepted connections
// across per-core MainLoops: each loop owns its sessions' fd watches, egress
// writers, poll timers and liveness sweeps, so the per-iteration costs that
// grow with session count - the poll(2) fd set, the timer heap, the sweep -
// divide by N instead of serializing on one thread.
//
// Loop 0 is the CALLER's loop (not owned, typically the process main loop);
// loops 1..N-1 each run on a dedicated thread started by Start().  With
// size() == 1 no thread is ever created and every "post to loop i" resolves
// to the primary loop: the single-loop configuration is byte-identical to
// the pre-sharding behaviour.
//
// Threading contract:
//   * loop(i)->Invoke(fn) is the only legal cross-loop entry point; all
//     other MainLoop methods stay owner-thread-only.
//   * InvokeSync must NOT be called from a pool loop thread (a worker
//     waiting on another worker that is itself waiting would deadlock); it
//     is for the primary/controlling thread - setup, teardown, diagnostics.
//   * Worker loops share the primary loop's Clock.  SimClock-driven tests
//     should stick to size() == 1: virtual time advanced concurrently from
//     N loops has no useful meaning.
#ifndef GSCOPE_RUNTIME_LOOP_POOL_H_
#define GSCOPE_RUNTIME_LOOP_POOL_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/event_loop.h"
#include "runtime/timer_stats.h"

namespace gscope {

class LoopPool {
 public:
  // `primary` is loop 0; not owned, must outlive the pool.  `loops` is
  // clamped to >= 1.  Worker loops exist after construction but their
  // threads only run between Start() and Stop().
  LoopPool(MainLoop* primary, size_t loops);
  ~LoopPool();  // Stop()s

  LoopPool(const LoopPool&) = delete;
  LoopPool& operator=(const LoopPool&) = delete;

  size_t size() const { return size_; }
  MainLoop* loop(size_t i) { return i == 0 ? primary_ : workers_[i - 1]->loop.get(); }
  MainLoop* primary() { return primary_; }

  // Spawns the N-1 worker threads (idempotent).  No-op at size() == 1.
  void Start();
  // Quits every worker loop and joins its thread (idempotent).  Sources
  // still installed on a worker loop stay installed - drain them first via
  // InvokeSync - but stop being dispatched.
  void Stop();
  bool running() const { return running_; }

  // Runs `fn` on loop i and waits for it to finish.  On loop 0 (or when the
  // pool is not running) the call is direct.  Primary/controlling thread
  // only - never from a pool loop callback (see header comment).
  void InvokeSync(size_t i, std::function<void()> fn);

  // TotalTimerStats() of every loop, folded in loop order (InvokeSync per
  // worker loop, so safe while running).  The per-loop breakdown is the
  // point: one overloaded shard must not hide inside a healthy sum.
  TimerStatsAggregate GatherTimerStats();

 private:
  struct Worker {
    std::unique_ptr<MainLoop> loop;
    std::thread thread;
  };

  MainLoop* primary_;
  size_t size_;
  std::vector<std::unique_ptr<Worker>> workers_;
  bool running_ = false;
};

}  // namespace gscope

#endif  // GSCOPE_RUNTIME_LOOP_POOL_H_
