// Per-timeout-source accounting.
//
// Section 4.5 of the paper: "scheduling latencies in the kernel can induce
// loss in polling timeouts under heavy loads.  To handle this problem, Gscope
// keeps track of lost timeouts and advances the scope refresh appropriately."
// TimerStats is that bookkeeping, exposed so callers (and the granularity
// bench, experiment E6) can observe it.
#ifndef GSCOPE_RUNTIME_TIMER_STATS_H_
#define GSCOPE_RUNTIME_TIMER_STATS_H_

#include <algorithm>
#include <cstdint>

#include "runtime/clock.h"

namespace gscope {

struct TimerStats {
  // Number of times the callback actually ran.
  int64_t fired = 0;
  // Number of whole periods that elapsed without a callback (missed ticks).
  int64_t lost = 0;
  // Latency between the scheduled deadline and the actual dispatch.
  Nanos total_latency_ns = 0;
  Nanos max_latency_ns = 0;

  void RecordDispatch(Nanos latency_ns, int64_t lost_ticks) {
    fired += 1;
    lost += lost_ticks;
    total_latency_ns += latency_ns;
    max_latency_ns = std::max(max_latency_ns, latency_ns);
  }

  double MeanLatencyNs() const {
    return fired == 0 ? 0.0 : static_cast<double>(total_latency_ns) / static_cast<double>(fired);
  }

  // Fraction of scheduled ticks that were missed.
  double LossRatio() const {
    int64_t scheduled = fired + lost;
    return scheduled == 0 ? 0.0 : static_cast<double>(lost) / static_cast<double>(scheduled);
  }
};

// Cross-loop aggregation for sharded servers (runtime/loop_pool.h).  With N
// per-core loops the per-source numbers above stay meaningful per loop, but
// an operator asking "is the server keeping up?" wants one answer: the sum
// over every loop plus the worst loop (a single overloaded shard hides
// inside a healthy sum).  Fold one TimerStats per loop; `total` accumulates
// and the max_* fields remember which loop contributed the worst loss ratio
// and the worst max latency.
struct TimerStatsAggregate {
  TimerStats total;
  size_t loops_folded = 0;
  // Loop index (fold order) with the highest LossRatio / max_latency_ns;
  // -1 until anything non-zero is folded.
  int max_loss_loop = -1;
  double max_loss_ratio = 0.0;
  int max_latency_loop = -1;
  Nanos max_latency_ns = 0;

  void Fold(const TimerStats& s) {
    int loop = static_cast<int>(loops_folded);
    loops_folded += 1;
    total.fired += s.fired;
    total.lost += s.lost;
    total.total_latency_ns += s.total_latency_ns;
    total.max_latency_ns = std::max(total.max_latency_ns, s.max_latency_ns);
    if (s.fired + s.lost > 0 &&
        (max_loss_loop < 0 || s.LossRatio() > max_loss_ratio)) {
      max_loss_loop = loop;
      max_loss_ratio = s.LossRatio();
    }
    if (s.fired > 0 && (max_latency_loop < 0 || s.max_latency_ns > max_latency_ns)) {
      max_latency_loop = loop;
      max_latency_ns = s.max_latency_ns;
    }
  }
};

// Information handed to a timeout callback on each dispatch.
struct TimeoutTick {
  // The deadline this dispatch was scheduled for.
  Nanos scheduled_ns = 0;
  // The time the dispatch actually happened.
  Nanos actual_ns = 0;
  // Whole periods missed since the previous dispatch (0 when on time).  A
  // scope uses this to advance its refresh by `lost + 1` columns so the
  // x-axis stays truthful under load.
  int64_t lost = 0;
};

}  // namespace gscope

#endif  // GSCOPE_RUNTIME_TIMER_STATS_H_
