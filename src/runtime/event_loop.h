// A glib-style main loop: the substrate gscope polls and dispatches through.
//
// The paper implements gscope on top of the GTK/glib event loop: polling uses
// the GTK timeout mechanism (select()-based), I/O-driven applications register
// GIOChannel watches, and "all events, GUI as well as application events, are
// handled by the same mechanism" (Section 4.3/4.5).  This module reproduces
// that substrate without GTK:
//
//   * timeout sources with per-source lost-timeout accounting (Section 4.5),
//   * idle sources,
//   * fd watches over poll(2)  (GIOChannel / g_io_add_watch analogue),
//   * a thread-safe Invoke() for cross-thread calls (the "acquire the global
//     GTK lock" discipline of Section 4.3 becomes "post a closure"),
//   * Run()/Quit()/Iterate() in the gtk_main() style.
//
// The loop is driven by a Clock.  With a SteadyClock it blocks in poll(2)
// until the next deadline; with a SimClock it advances virtual time to the
// next deadline, which makes scope behaviour fully deterministic in tests.
#ifndef GSCOPE_RUNTIME_EVENT_LOOP_H_
#define GSCOPE_RUNTIME_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/clock.h"
#include "runtime/timer_stats.h"

namespace gscope {

// I/O conditions, mirroring G_IO_IN / G_IO_OUT / G_IO_HUP / G_IO_ERR.
enum class IoCondition : uint8_t {
  kIn = 1 << 0,
  kOut = 1 << 1,
  kHup = 1 << 2,
  kErr = 1 << 3,
};

inline IoCondition operator|(IoCondition a, IoCondition b) {
  return static_cast<IoCondition>(static_cast<uint8_t>(a) | static_cast<uint8_t>(b));
}
inline bool Has(IoCondition set, IoCondition bit) {
  return (static_cast<uint8_t>(set) & static_cast<uint8_t>(bit)) != 0;
}

// Source identifiers, as returned by the Add* calls.  0 is never a valid id.
using SourceId = int;

class MainLoop {
 public:
  // Return true to keep the source installed, false to remove it (glib style).
  using TimeoutFn = std::function<bool(const TimeoutTick&)>;
  using IdleFn = std::function<bool()>;
  using IoFn = std::function<bool(int fd, IoCondition cond)>;

  // `clock` defaults to the process steady clock; not owned.
  explicit MainLoop(Clock* clock = nullptr);
  ~MainLoop();

  MainLoop(const MainLoop&) = delete;
  MainLoop& operator=(const MainLoop&) = delete;

  Clock* clock() const { return clock_; }

  // The loop currently iterating on this thread (null outside Iterate/Run).
  // With sharded per-core loops (runtime/loop_pool.h) this is how code that
  // can run on any loop - e.g. a shared router - learns its loop identity.
  static MainLoop* Current();
  // True when the calling thread is inside this loop's Iterate/Run.  Source
  // mutation (Add*/Remove) is only legal on the owning thread; cross-loop
  // callers post through Invoke().
  bool IsLoopThread() const { return Current() == this; }

  // -- Sources -------------------------------------------------------------

  // Calls `fn` every `period_ns`, first at now + period.  Missed periods are
  // counted (not replayed): the callback is invoked once with tick.lost set.
  SourceId AddTimeoutNs(Nanos period_ns, TimeoutFn fn);
  SourceId AddTimeoutMs(int64_t period_ms, TimeoutFn fn) {
    return AddTimeoutNs(MillisToNanos(period_ms), fn);
  }
  // Convenience for callbacks that do not care about tick metadata.
  SourceId AddTimeoutMs(int64_t period_ms, std::function<bool()> fn) {
    return AddTimeoutNs(MillisToNanos(period_ms), [fn](const TimeoutTick&) { return fn(); });
  }

  // Runs whenever no timeout is due and no fd is ready.
  SourceId AddIdle(IdleFn fn);

  // Watches `fd` for `cond`; `fn` runs with the ready subset.
  SourceId AddIoWatch(int fd, IoCondition cond, IoFn fn);

  // Removes any kind of source.  Safe to call from inside its own callback.
  // Returns false if the id is unknown (already removed).
  bool Remove(SourceId id);

  // Changes a timeout source's period in place, preserving its stats.  The
  // next deadline is rescheduled to now + new period.  This is the sampling
  // period widget of Figure 1.  Returns false for unknown/non-timeout ids.
  bool SetTimeoutPeriodNs(SourceId id, Nanos period_ns);

  // Per-source accounting (lost timeouts, dispatch latency).  Null if gone.
  const TimerStats* StatsFor(SourceId id) const;

  // Sum over every installed timeout source (loop thread only).  One loop's
  // contribution to a sharded server's TimerStatsAggregate.
  TimerStats TotalTimerStats() const;

  // -- Running -------------------------------------------------------------

  // Dispatches until Quit().  Equivalent of gtk_main().
  void Run();
  void Quit();

  // Runs a single iteration: dispatch due timers, ready fds, thread-posted
  // closures, idles.  If `may_block` and nothing is ready, blocks (real
  // clock) or advances virtual time (SimClock) to the next deadline.
  // Returns true if anything was dispatched.
  bool Iterate(bool may_block);

  // Runs for `duration_ns` of clock time, then returns.  With a SimClock this
  // is a deterministic fast-forward; with a real clock it is a bounded Run().
  void RunForNs(Nanos duration_ns);
  void RunForMs(int64_t ms) { RunForNs(MillisToNanos(ms)); }

  // -- Cross-thread --------------------------------------------------------

  // Enqueues `fn` to run on the loop thread and wakes the loop.  This is the
  // supported way for a signal-producing thread to touch scope state
  // (Section 4.3's GTK-lock discipline).  Thread-safe.
  void Invoke(std::function<void()> fn);

  // -- Diagnostics ----------------------------------------------------------

  // Installs a hook that runs at the top of every Iterate(), before timers
  // and poll.  This is the fault-injection / tracing seam: a test can flip
  // FaultInjector rules, kill fds, or record iteration counts on exact loop
  // boundaries instead of guessing with sleeps.  One hook at a time; pass
  // nullptr to clear.  Not for production logic.
  void SetPreIterateHook(std::function<void()> hook) {
    pre_iterate_hook_ = std::move(hook);
  }

  // Number of sources currently installed (for tests/diagnostics).
  size_t source_count() const;

 private:
  struct TimeoutSource;
  struct IdleSource;
  struct IoSource;

  // Timer-heap entry: deadlines are dispatched from a min-heap, so one
  // iteration costs O(due * log timers) instead of a full scan of every
  // installed source.  With thousands of per-session poll timers on a
  // sharded server the old O(timers)-per-iteration scan dominated the loop.
  // Entries are never updated in place: rescheduling pushes a fresh entry
  // and stale ones (deadline no longer matching the source) are skipped
  // lazily at pop time.
  struct TimerHeapEntry {
    Nanos deadline_ns;
    SourceId id;
  };
  struct TimerHeapLater {
    bool operator()(const TimerHeapEntry& a, const TimerHeapEntry& b) const {
      return a.deadline_ns != b.deadline_ns ? a.deadline_ns > b.deadline_ns : a.id > b.id;
    }
  };

  bool TimerEntryCurrent(const TimerHeapEntry& entry) const;
  bool DispatchTimers(Nanos now, bool* any_pending, Nanos* next_deadline);
  bool DispatchIdles();
  bool DrainInvokeQueue();
  int PollFds(Nanos timeout_ns);
  void Wakeup();

  Clock* clock_;
  std::atomic<bool> quit_{false};

  SourceId next_id_ = 1;
  std::map<SourceId, std::unique_ptr<TimeoutSource>> timeouts_;
  std::map<SourceId, std::unique_ptr<IdleSource>> idles_;
  std::map<SourceId, std::unique_ptr<IoSource>> io_watches_;

  // Min-heap over (deadline, id); may hold stale entries for removed or
  // rescheduled sources (lazily dropped).  live_timeouts_ counts sources not
  // yet marked removed, so "any timer pending" needs no map scan either.
  std::vector<TimerHeapEntry> timer_heap_;
  size_t live_timeouts_ = 0;
  std::vector<SourceId> due_scratch_;

  // Ids removed while dispatching; applied after the dispatch pass.
  std::vector<SourceId> pending_removals_;
  bool dispatching_ = false;

  mutable std::mutex invoke_mu_;
  std::vector<std::function<void()>> invoke_queue_;

  // Loop-thread only; runs first in every Iterate().
  std::function<void()> pre_iterate_hook_;

  // Self-pipe used to interrupt poll(2) from Invoke().
  int wake_pipe_[2] = {-1, -1};
};

}  // namespace gscope

#endif  // GSCOPE_RUNTIME_EVENT_LOOP_H_
