// Clock abstraction for the gscope event loop.
//
// The paper's gscope polls through the GTK timeout mechanism, which is driven
// by wall-clock time (select() timeouts).  To make the library testable and to
// let the network simulator reuse the same scope machinery deterministically,
// every time-dependent component takes a Clock.  SteadyClock is the production
// clock (monotonic); SimClock is a manually advanced clock for tests and
// simulation-driven scopes.
#ifndef GSCOPE_RUNTIME_CLOCK_H_
#define GSCOPE_RUNTIME_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace gscope {

// Nanoseconds since an arbitrary, clock-private epoch.
using Nanos = int64_t;

constexpr Nanos kNanosPerMilli = 1'000'000;
constexpr Nanos kNanosPerSecond = 1'000'000'000;

constexpr Nanos MillisToNanos(int64_t ms) { return ms * kNanosPerMilli; }
constexpr double NanosToMillis(Nanos ns) { return static_cast<double>(ns) / kNanosPerMilli; }
constexpr double NanosToSeconds(Nanos ns) { return static_cast<double>(ns) / kNanosPerSecond; }

// Monotonic time source.  Implementations must be monotone non-decreasing.
class Clock {
 public:
  virtual ~Clock() = default;

  // Current time in nanoseconds since the clock's epoch.
  virtual Nanos NowNs() = 0;

  // Convenience: current time in (fractional) milliseconds.
  double NowMs() { return NanosToMillis(NowNs()); }
};

// Production clock backed by std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  Nanos NowNs() override {
    auto d = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
  }

  // Process-wide instance, convenient as a default.
  static SteadyClock* Instance() {
    static SteadyClock clock;
    return &clock;
  }
};

// Manually advanced clock for deterministic tests and simulations.  Reads
// and advances are atomic: producer threads time-stamp pushes through
// Scope::NowMs while the loop thread advances virtual time.
class SimClock final : public Clock {
 public:
  explicit SimClock(Nanos start_ns = 0) : now_ns_(start_ns) {}

  Nanos NowNs() override { return now_ns_.load(std::memory_order_relaxed); }

  // Advances time by `delta_ns` (must be non-negative).
  void AdvanceNs(Nanos delta_ns) {
    if (delta_ns > 0) {
      now_ns_.fetch_add(delta_ns, std::memory_order_relaxed);
    }
  }
  void AdvanceMs(int64_t ms) { AdvanceNs(MillisToNanos(ms)); }

  // Jumps directly to `t_ns` if it is in the future; no-op otherwise (the
  // clock must stay monotone even when racing with AdvanceNs).
  void SetNs(Nanos t_ns) {
    Nanos current = now_ns_.load(std::memory_order_relaxed);
    while (t_ns > current &&
           !now_ns_.compare_exchange_weak(current, t_ns, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<Nanos> now_ns_;
};

}  // namespace gscope

#endif  // GSCOPE_RUNTIME_CLOCK_H_
