#include "runtime/event_loop.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <limits>

namespace gscope {
namespace {

constexpr Nanos kNoDeadline = std::numeric_limits<Nanos>::max();

// poll(2) takes milliseconds; round up so we never spin before a deadline.
int NanosToPollTimeout(Nanos ns) {
  if (ns <= 0) {
    return 0;
  }
  Nanos ms = (ns + kNanosPerMilli - 1) / kNanosPerMilli;
  if (ms > std::numeric_limits<int>::max()) {
    return std::numeric_limits<int>::max();
  }
  return static_cast<int>(ms);
}

short CondToPollEvents(IoCondition cond) {
  short events = 0;
  if (Has(cond, IoCondition::kIn)) {
    events |= POLLIN;
  }
  if (Has(cond, IoCondition::kOut)) {
    events |= POLLOUT;
  }
  return events;
}

IoCondition PollEventsToCond(short revents) {
  IoCondition cond = static_cast<IoCondition>(0);
  if (revents & POLLIN) {
    cond = cond | IoCondition::kIn;
  }
  if (revents & POLLOUT) {
    cond = cond | IoCondition::kOut;
  }
  if (revents & POLLHUP) {
    cond = cond | IoCondition::kHup;
  }
  if (revents & (POLLERR | POLLNVAL)) {
    cond = cond | IoCondition::kErr;
  }
  return cond;
}

thread_local MainLoop* tls_current_loop = nullptr;

// RAII save/restore so nested Iterate calls (a callback pumping another
// loop on the same thread) keep Current() truthful.
struct CurrentLoopScope {
  MainLoop* saved;
  explicit CurrentLoopScope(MainLoop* loop) : saved(tls_current_loop) {
    tls_current_loop = loop;
  }
  ~CurrentLoopScope() { tls_current_loop = saved; }
};

}  // namespace

MainLoop* MainLoop::Current() { return tls_current_loop; }

struct MainLoop::TimeoutSource {
  Nanos period_ns = 0;
  Nanos deadline_ns = 0;
  TimeoutFn fn;
  TimerStats stats;
  bool removed = false;
};

struct MainLoop::IdleSource {
  IdleFn fn;
  bool removed = false;
};

struct MainLoop::IoSource {
  int fd = -1;
  IoCondition cond = IoCondition::kIn;
  IoFn fn;
  bool removed = false;
};

MainLoop::MainLoop(Clock* clock) : clock_(clock != nullptr ? clock : SteadyClock::Instance()) {
  if (pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC) != 0) {
    wake_pipe_[0] = wake_pipe_[1] = -1;
  }
}

MainLoop::~MainLoop() {
  for (int fd : wake_pipe_) {
    if (fd >= 0) {
      close(fd);
    }
  }
}

SourceId MainLoop::AddTimeoutNs(Nanos period_ns, TimeoutFn fn) {
  if (period_ns <= 0 || !fn) {
    return 0;
  }
  auto src = std::make_unique<TimeoutSource>();
  src->period_ns = period_ns;
  src->deadline_ns = clock_->NowNs() + period_ns;
  src->fn = std::move(fn);
  SourceId id = next_id_++;
  timer_heap_.push_back({src->deadline_ns, id});
  std::push_heap(timer_heap_.begin(), timer_heap_.end(), TimerHeapLater{});
  live_timeouts_ += 1;
  timeouts_[id] = std::move(src);
  return id;
}

SourceId MainLoop::AddIdle(IdleFn fn) {
  if (!fn) {
    return 0;
  }
  auto src = std::make_unique<IdleSource>();
  src->fn = std::move(fn);
  SourceId id = next_id_++;
  idles_[id] = std::move(src);
  return id;
}

SourceId MainLoop::AddIoWatch(int fd, IoCondition cond, IoFn fn) {
  if (fd < 0 || !fn) {
    return 0;
  }
  auto src = std::make_unique<IoSource>();
  src->fd = fd;
  src->cond = cond;
  src->fn = std::move(fn);
  SourceId id = next_id_++;
  io_watches_[id] = std::move(src);
  return id;
}

bool MainLoop::Remove(SourceId id) {
  auto mark = [this, id](auto& map) -> bool {
    auto it = map.find(id);
    if (it == map.end() || it->second->removed) {
      return false;
    }
    if (dispatching_) {
      it->second->removed = true;
      pending_removals_.push_back(id);
    } else {
      map.erase(it);
    }
    return true;
  };
  if (mark(timeouts_)) {
    live_timeouts_ -= 1;  // stale heap entries are dropped lazily at pop
    return true;
  }
  return mark(idles_) || mark(io_watches_);
}

bool MainLoop::SetTimeoutPeriodNs(SourceId id, Nanos period_ns) {
  if (period_ns <= 0) {
    return false;
  }
  auto it = timeouts_.find(id);
  if (it == timeouts_.end() || it->second->removed) {
    return false;
  }
  it->second->period_ns = period_ns;
  it->second->deadline_ns = clock_->NowNs() + period_ns;
  timer_heap_.push_back({it->second->deadline_ns, id});
  std::push_heap(timer_heap_.begin(), timer_heap_.end(), TimerHeapLater{});
  return true;
}

const TimerStats* MainLoop::StatsFor(SourceId id) const {
  auto it = timeouts_.find(id);
  if (it == timeouts_.end()) {
    return nullptr;
  }
  return &it->second->stats;
}

TimerStats MainLoop::TotalTimerStats() const {
  TimerStats total;
  for (const auto& [id, src] : timeouts_) {
    if (src->removed) {
      continue;
    }
    total.fired += src->stats.fired;
    total.lost += src->stats.lost;
    total.total_latency_ns += src->stats.total_latency_ns;
    total.max_latency_ns = std::max(total.max_latency_ns, src->stats.max_latency_ns);
  }
  return total;
}

size_t MainLoop::source_count() const {
  return timeouts_.size() + idles_.size() + io_watches_.size();
}

bool MainLoop::TimerEntryCurrent(const TimerHeapEntry& entry) const {
  auto it = timeouts_.find(entry.id);
  return it != timeouts_.end() && !it->second->removed &&
         it->second->deadline_ns == entry.deadline_ns;
}

bool MainLoop::DispatchTimers(Nanos now, bool* any_pending, Nanos* next_deadline) {
  // Pop every due entry off the min-heap, skipping stale ones (removed or
  // rescheduled sources: their live entry, if any, carries the current
  // deadline).  Dispatch order stays id order - the pre-heap behaviour -
  // and duplicates (a source rescheduled back to the same deadline) fold
  // away in the sort+unique.
  std::vector<SourceId>& due = due_scratch_;
  due.clear();
  while (!timer_heap_.empty()) {
    const TimerHeapEntry& top = timer_heap_.front();
    if (!TimerEntryCurrent(top)) {
      std::pop_heap(timer_heap_.begin(), timer_heap_.end(), TimerHeapLater{});
      timer_heap_.pop_back();
      continue;
    }
    if (top.deadline_ns > now) {
      break;
    }
    due.push_back(top.id);
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), TimerHeapLater{});
    timer_heap_.pop_back();
  }
  std::sort(due.begin(), due.end());
  due.erase(std::unique(due.begin(), due.end()), due.end());

  bool dispatched = false;
  dispatching_ = true;
  for (SourceId id : due) {
    auto it = timeouts_.find(id);
    if (it == timeouts_.end() || it->second->removed) {
      continue;
    }
    TimeoutSource* src = it->second.get();
    Nanos latency = now - src->deadline_ns;
    // Whole periods that elapsed past the deadline are "lost" ticks: the
    // callback runs once and is told how many refreshes it missed.
    int64_t lost = latency / src->period_ns;
    TimeoutTick tick{src->deadline_ns, now, lost};
    src->stats.RecordDispatch(latency, lost);
    src->deadline_ns += (lost + 1) * src->period_ns;
    bool keep = src->fn(tick);
    dispatched = true;
    if (!keep && !src->removed) {
      src->removed = true;
      live_timeouts_ -= 1;
      pending_removals_.push_back(id);
    } else if (!src->removed) {
      // Re-arm (the callback may itself have rescheduled; a duplicate entry
      // is harmless - stale ones validate against the source's deadline).
      timer_heap_.push_back({src->deadline_ns, id});
      std::push_heap(timer_heap_.begin(), timer_heap_.end(), TimerHeapLater{});
    }
  }
  dispatching_ = false;

  for (SourceId id : pending_removals_) {
    timeouts_.erase(id);
    idles_.erase(id);
    io_watches_.erase(id);
  }
  pending_removals_.clear();

  *any_pending = live_timeouts_ > 0;
  while (!timer_heap_.empty() && !TimerEntryCurrent(timer_heap_.front())) {
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), TimerHeapLater{});
    timer_heap_.pop_back();
  }
  *next_deadline = timer_heap_.empty() ? kNoDeadline : timer_heap_.front().deadline_ns;
  return dispatched;
}

bool MainLoop::DispatchIdles() {
  std::vector<SourceId> ids;
  ids.reserve(idles_.size());
  for (const auto& [id, src] : idles_) {
    if (!src->removed) {
      ids.push_back(id);
    }
  }
  bool dispatched = false;
  dispatching_ = true;
  for (SourceId id : ids) {
    auto it = idles_.find(id);
    if (it == idles_.end() || it->second->removed) {
      continue;
    }
    bool keep = it->second->fn();
    dispatched = true;
    if (!keep && !it->second->removed) {
      it->second->removed = true;
      pending_removals_.push_back(id);
    }
  }
  dispatching_ = false;
  for (SourceId id : pending_removals_) {
    idles_.erase(id);
    timeouts_.erase(id);
    io_watches_.erase(id);
  }
  pending_removals_.clear();
  return dispatched;
}

bool MainLoop::DrainInvokeQueue() {
  std::vector<std::function<void()>> queue;
  {
    std::lock_guard<std::mutex> lock(invoke_mu_);
    queue.swap(invoke_queue_);
  }
  for (auto& fn : queue) {
    fn();
  }
  return !queue.empty();
}

int MainLoop::PollFds(Nanos timeout_ns) {
  std::vector<pollfd> pfds;
  std::vector<SourceId> ids;
  pfds.reserve(io_watches_.size() + 1);
  for (const auto& [id, src] : io_watches_) {
    if (src->removed) {
      continue;
    }
    pfds.push_back(pollfd{src->fd, CondToPollEvents(src->cond), 0});
    ids.push_back(id);
  }
  size_t wake_index = pfds.size();
  if (wake_pipe_[0] >= 0) {
    pfds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
  }

  int n = poll(pfds.data(), pfds.size(), NanosToPollTimeout(timeout_ns));
  if (n <= 0) {
    return 0;
  }

  if (wake_pipe_[0] >= 0 && (pfds[wake_index].revents & POLLIN)) {
    char buf[64];
    while (read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
    }
  }

  int dispatched = 0;
  dispatching_ = true;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (pfds[i].revents == 0) {
      continue;
    }
    auto it = io_watches_.find(ids[i]);
    if (it == io_watches_.end() || it->second->removed) {
      continue;
    }
    bool keep = it->second->fn(pfds[i].fd, PollEventsToCond(pfds[i].revents));
    ++dispatched;
    if (!keep && !it->second->removed) {
      it->second->removed = true;
      pending_removals_.push_back(ids[i]);
    }
  }
  dispatching_ = false;
  for (SourceId id : pending_removals_) {
    io_watches_.erase(id);
    timeouts_.erase(id);
    idles_.erase(id);
  }
  pending_removals_.clear();
  return dispatched;
}

void MainLoop::Wakeup() {
  if (wake_pipe_[1] >= 0) {
    char byte = 1;
    ssize_t rc = write(wake_pipe_[1], &byte, 1);
    (void)rc;  // A full pipe already guarantees a wakeup.
  }
}

void MainLoop::Invoke(std::function<void()> fn) {
  if (!fn) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(invoke_mu_);
    invoke_queue_.push_back(std::move(fn));
  }
  Wakeup();
}

bool MainLoop::Iterate(bool may_block) {
  CurrentLoopScope current_scope(this);
  if (pre_iterate_hook_) {
    pre_iterate_hook_();
  }
  bool dispatched = DrainInvokeQueue();

  Nanos now = clock_->NowNs();
  bool timers_pending = false;
  Nanos next_deadline = kNoDeadline;
  dispatched |= DispatchTimers(now, &timers_pending, &next_deadline);

  bool have_idles = !idles_.empty();
  auto* sim = dynamic_cast<SimClock*>(clock_);

  Nanos poll_timeout = 0;
  if (!dispatched && may_block && !have_idles && sim == nullptr) {
    poll_timeout = timers_pending ? std::max<Nanos>(0, next_deadline - clock_->NowNs())
                                  : Nanos{std::numeric_limits<Nanos>::max()};
    if (poll_timeout == std::numeric_limits<Nanos>::max()) {
      // No timers: block "forever"; a Wakeup()/fd event interrupts poll.
      poll_timeout = MillisToNanos(1000);
    }
  }

  dispatched |= PollFds(poll_timeout) > 0;
  dispatched |= DrainInvokeQueue();

  if (!dispatched && have_idles) {
    dispatched |= DispatchIdles();
  }

  if (!dispatched && may_block && sim != nullptr && timers_pending) {
    // Simulated time: fast-forward to the next deadline and fire it.
    sim->SetNs(next_deadline);
    bool pending = false;
    Nanos unused = 0;
    dispatched |= DispatchTimers(sim->NowNs(), &pending, &unused);
  }

  return dispatched;
}

void MainLoop::Run() {
  quit_.store(false, std::memory_order_relaxed);
  while (!quit_.load(std::memory_order_relaxed)) {
    Iterate(/*may_block=*/true);
  }
}

void MainLoop::Quit() {
  quit_.store(true, std::memory_order_relaxed);
  Wakeup();
}

void MainLoop::RunForNs(Nanos duration_ns) {
  if (duration_ns <= 0) {
    return;
  }
  bool done = false;
  SourceId sentinel = AddTimeoutNs(duration_ns, [&done](const TimeoutTick&) {
    done = true;
    return false;
  });
  if (sentinel == 0) {
    return;
  }
  while (!done) {
    Iterate(/*may_block=*/true);
  }
}

}  // namespace gscope
