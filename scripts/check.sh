#!/usr/bin/env bash
# Tier-1 verify plus Release-mode bench smokes, an ASan+UBSan pass over the
# net/control tests with a control-channel smoke (subscribe, push, assert
# echoed tuples), and a TSan pass over the sharded fan-out, so the ingest
# fast paths and the new bidirectional control path cannot silently rot.
# Usage: scripts/check.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j
# Labeled split: the fast tests run fully parallel without a RUN_SERIAL
# stress rig serializing the schedule around itself; the stress label runs
# on its own right after (same coverage as one flat `ctest -j`).
ctest --test-dir "$build_dir" --output-on-failure -L fast -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -L stress

echo "--- bench smoke: tuple codec ---"
"$build_dir/bench_tuple_codec" --benchmark_min_time=0.05

echo "--- bench smoke: net stream ---"
"$build_dir/bench_net_stream"

echo "--- bench smoke: fan-out (reduced tuple count) ---"
"$build_dir/bench_fanout" 5000

echo "--- bench smoke: backpressure sweep (reduced tuple count) ---"
"$build_dir/bench_backpressure" 2000 > /dev/null

echo "--- bench smoke: drain coalescing (reduced tuple count, 1 round) ---"
# Exits non-zero if any mode drops a sample or shows a wrong final hold;
# the self-check is the point of the smoke, the numbers are not.
"$build_dir/bench_drain" 5000 1

echo "--- bench smoke: flight recorder (reduced tuple count, 1 round) ---"
# Exits non-zero if the raw append path loses a record, capture-while-serving
# misses a routed sample (or degrades), or recovery finds the wrong extent
# count; the self-checks are the point, the numbers are BENCH_recorder.json's.
"$build_dir/bench_recorder" 5000 1 > /dev/null

# Every other bench target gets a ~1s smoke: it must start and not crash.
# Long-running experiment mains are cut off by timeout (exit 124 = alive).
echo "--- bench smoke: all remaining targets (~1s each) ---"
for bench in "$build_dir"/bench_*; do
  [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  case "$name" in
    bench_tuple_codec|bench_net_stream|bench_fanout|bench_backpressure|bench_drain|bench_recorder) continue ;;
  esac
  args=()
  case "$name" in
    bench_fft|bench_scope_micro) args=(--benchmark_min_time=0.05) ;;
  esac
  rc=0
  timeout --signal=KILL 1 "$bench" "${args[@]}" > /dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 0 ] && [ "$rc" -ne 124 ] && [ "$rc" -ne 137 ]; then
    echo "bench smoke FAILED: $name (exit $rc)"
    exit 1
  fi
  echo "ok: $name"
done

echo "--- ASan+UBSan: net/control correctness ---"
asan_dir="$repo_root/build-asan"
cmake -B "$asan_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
  > /dev/null
cmake --build "$asan_dir" -j --target \
  test_socket test_stream test_datagram_server test_control_channel \
  test_signal_filter test_framing_fuzz test_reliability test_record \
  example_remote_control
"$asan_dir/test_socket"
"$asan_dir/test_stream"
"$asan_dir/test_datagram_server"
"$asan_dir/test_control_channel"
"$asan_dir/test_signal_filter"

echo "--- ASan+UBSan fault matrix: framing fuzz + self-healing transport ---"
# The fault injector mangles every syscall boundary (1-byte reads, partial
# writes, EINTR storms, mid-frame kills) while the sanitizers watch the
# reassembly buffers: exactly where a torn-frame overread would hide.  The
# matrix includes the binary-wire column (negotiated frames under the same
# faults), and test_framing_fuzz's corpus covers binary chunking, corrupted
# CRCs, truncated-frame resync and the text->HELLO->binary transition.
"$asan_dir/test_framing_fuzz"
"$asan_dir/test_reliability"

echo "--- ASan+UBSan crash-recovery matrix: flight recorder (file-fault x fsync-policy) ---"
# The file-op fault shim tears seals mid-pwrite, storms EIO/ENOSPC and fails
# fsyncs across every fsync policy while the sanitizers watch the extent
# scratch, the recovery scan and the torn-tail ftruncate: exactly where a
# short-slot overread or a stale-column reuse would hide.  The seeded fuzz
# re-runs the byte-identical-recovery invariant under ASan on top.
"$asan_dir/test_record" \
  --gtest_filter='ExtentLogTest.FaultMatrixRecoveryInvariant:ExtentLogTest.TornTailRecoveryFuzz:ExtentLogTest.DiskFull*:ExtentLogTest.FsyncFailureIsCountedNeverFatal:ExtentLogTest.NonEnospcSealFailureDropsExtentNotCapture'

echo "--- control-channel smoke (ASan+UBSan): subscribe, push, assert echo ---"
# example_remote_control exits non-zero unless both subscribers received
# disjoint delayed echo streams with zero parse errors.
"$asan_dir/example_remote_control"

echo "--- TSan: sharded fan-out race check ---"
tsan_dir="$repo_root/build-tsan"
cmake -B "$tsan_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread" -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" \
  > /dev/null
# Only the new sharded fan-out tests run under TSan: test_threading's own
# harness reads scope state cross-thread by design (the paper's sampled-
# variable model) and is expected to trip the sanitizer.
cmake --build "$tsan_dir" -j --target test_ingest_router test_ingest_fast_path \
  test_drain_coalescing test_stress_multiproducer test_reliability \
  test_loop_sharding test_tenant_isolation test_control_channel
"$tsan_dir/test_ingest_router"
"$tsan_dir/test_ingest_fast_path"

echo "--- TSan: coalesced drain under concurrent producers ---"
"$tsan_dir/test_drain_coalescing"

echo "--- TSan: multi-producer backpressure stress (thread-mode policies) ---"
# The fork-based producers and the restart soak are excluded under TSan:
# fork from an instrumented runtime is unreliable, and the sanitizer's
# slowdown turns the soak's real-time schedule into noise.  The three
# policy tests cover every thread interaction the harness has.
"$tsan_dir/test_stress_multiproducer" \
  --gtest_filter='StressMultiProducer.Drop*:StressMultiProducer.Block*'

echo "--- TSan: fault matrix over producer/viewer threads ---"
# Only the matrix test runs under TSan: it is the one that mixes the
# process-global fault shim with producer threads, viewer loop threads and
# server restarts (text and binary-wire rows alike).  The timing-shaped reliability tests (backoff ladders,
# liveness deadlines) are excluded - the sanitizer's slowdown turns their
# real-time schedules into noise, and ASan above already runs them all.
"$tsan_dir/test_reliability" \
  --gtest_filter='ReliabilityMatrixTest.FaultMatrixHoldsDeliveryInvariants'

echo "--- TSan: sharded per-core loops (accept spread, cross-loop routing, tenants) ---"
# The loops > 1 configuration is where worker loop threads touch the shared
# route tables, the relaxed client counters and the hand-off acceptor; the
# sharded fault matrix re-runs the fault x policy schedules with
# server_loops = 4 on top.  loops = 1 coverage rides the regular suites.
"$tsan_dir/test_loop_sharding"
"$tsan_dir/test_tenant_isolation"
"$tsan_dir/test_reliability" \
  --gtest_filter='ReliabilityMatrixTest.ShardedLoopsFaultMatrixHoldsInvariants'

echo "--- TSan: shared stage groups under sharded server loops ---"
# Six sessions attach the same derived stage with server loops = 4: the
# per-loop group attach/detach, the shared-group evaluation and the
# cross-loop STATS fold (CoalesceMirror reads) all race-checked at once.
"$tsan_dir/test_control_channel" \
  --gtest_filter='ControlChannelTest.SharedStage*'

echo "--- bench smoke: scale-out fan-out (1k subscribers, loops 1 vs 4) ---"
# Reduced tuple count: the smoke proves both shard mechanisms accept and
# echo at 1k sessions, not the speedup (that is BENCH_control.json's job).
"$build_dir/bench_control_fanout" --scale 1000 20000

echo "--- bench smoke: derived pipelines (reduced tuple count) ---"
# Proves the shared-stage sweep runs end to end (raw, coalesced,
# decimate-10, spectrum-256); the egress-cut numbers are
# BENCH_control.json's job.
"$build_dir/bench_control_fanout" --derived 4000

echo "--- soak: mixed schedules, all policies (Release, < 10 s) ---"
GSCOPE_STRESS_SOAK=3 "$build_dir/test_stress_multiproducer" \
  --gtest_filter='StressMultiProducer.Soak*'

echo "--- soak: reconnect under faults (Release, < 10 s) ---"
# Short-read faults + repeated server restarts; every producer must
# reconnect and every viewer must resume its session, with the delivery
# invariants intact.
GSCOPE_STRESS_SOAK=1 "$build_dir/test_reliability" \
  --gtest_filter='ReliabilityMatrixTest.ReconnectSoak'

echo "--- soak: flight recorder disk-full rotation (Release, < 10 s) ---"
# 200 phases rotating healthy / ENOSPC-forever / probabilistic-EIO /
# partial-write fault regimes: the log must degrade to coalesced capture,
# re-seal on recovery, and end every phase readable and time-sorted.
GSCOPE_STRESS_SOAK=1 "$build_dir/test_record" \
  --gtest_filter='RecorderSoakTest.*'

echo "check.sh: OK"
