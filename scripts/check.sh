#!/usr/bin/env bash
# Tier-1 verify plus a Release-mode bench smoke, so the ingest fast paths
# cannot silently rot.  Usage: scripts/check.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

echo "--- bench smoke: tuple codec ---"
"$build_dir/bench_tuple_codec" --benchmark_min_time=0.05

echo "--- bench smoke: net stream ---"
"$build_dir/bench_net_stream"

echo "check.sh: OK"
